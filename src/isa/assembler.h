// A small two-pass assembler for the sndp ISA.  Syntax (one instruction per
// line; `;` or `#` start a comment):
//
//   loop:                      ; label
//   MOVI   R4, 4096
//   IMAD   R5, R0, 8, R4
//   LD.F32 R1, [R5+0]
//   FADD   R2, R1, R1
//   ST.F32 [R5+0], R2
//   ISETP  P0, LT, R0, R9     ; P0 = R0 < R9
//   @P0 BRA loop
//   EXIT
//
// Registers: R0..R31, predicates P0..P7.  Memory suffixes: .32/.64/.F32
// (default .64).  Immediates: decimal or 0x hex.
#pragma once

#include <stdexcept>
#include <string>

#include "isa/program.h"

namespace sndp {

// Throws AsmError (derived from std::runtime_error) with line info on any
// syntax problem.
class AsmError : public std::runtime_error {
 public:
  AsmError(unsigned line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  unsigned line() const { return line_; }

 private:
  unsigned line_;
};

Program assemble(const std::string& source);

}  // namespace sndp
