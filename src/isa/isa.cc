#include "isa/isa.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace sndp {

bool Instr::is_alu() const {
  switch (op) {
    case Opcode::kMov:
    case Opcode::kMovI:
    case Opcode::kIAdd:
    case Opcode::kISub:
    case Opcode::kIMul:
    case Opcode::kIMad:
    case Opcode::kIDiv:
    case Opcode::kIRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kIMin:
    case Opcode::kIMax:
    case Opcode::kFAdd:
    case Opcode::kFSub:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFDiv:
    case Opcode::kFMin:
    case Opcode::kFMax:
    case Opcode::kFSqrt:
    case Opcode::kFAbs:
    case Opcode::kFNeg:
    case Opcode::kI2F:
    case Opcode::kF2I:
    case Opcode::kISetp:
    case Opcode::kFSetp:
      return true;
    default:
      return false;
  }
}

unsigned Instr::num_srcs() const {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kMovI:
    case Opcode::kBar:
    case Opcode::kExit:
    case Opcode::kOfldBeg:
    case Opcode::kOfldEnd:
      return 0;
    case Opcode::kMov:
    case Opcode::kFSqrt:
    case Opcode::kFAbs:
    case Opcode::kFNeg:
    case Opcode::kI2F:
    case Opcode::kF2I:
    case Opcode::kLd:
    case Opcode::kShmLd:
    case Opcode::kLdc:
    case Opcode::kBra:
      return 1;
    case Opcode::kIMad:
    case Opcode::kFFma:
      return 3;
    case Opcode::kSt:
    case Opcode::kShmSt:
      return 2;  // src0 = address base, src1 = data
    default:
      return use_imm ? 1 : 2;
  }
}

ExecClass Instr::exec_class() const {
  if (is_mem()) return ExecClass::kMem;
  switch (op) {
    case Opcode::kIMul:
    case Opcode::kIMad:
    case Opcode::kIDiv:
    case Opcode::kIRem:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFDiv:
    case Opcode::kFSqrt:
      return ExecClass::kSfu;
    case Opcode::kBra:
    case Opcode::kBar:
    case Opcode::kExit:
    case Opcode::kOfldBeg:
    case Opcode::kOfldEnd:
    case Opcode::kNop:
      return ExecClass::kCtrl;
    default:
      return ExecClass::kAlu;
  }
}

double bits_to_f64(RegValue bits) {
  double v;
  static_assert(sizeof(v) == sizeof(bits));
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

RegValue f64_to_bits(double value) {
  RegValue bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

bool guard_passes(const Instr& instr, const ThreadCtx& ctx) {
  if (instr.guard_pred == kNoPred) return true;
  return ctx.preds[static_cast<unsigned>(instr.guard_pred)] == instr.guard_sense;
}

namespace {

std::int64_t s64(RegValue v) { return static_cast<std::int64_t>(v); }
RegValue u64(std::int64_t v) { return static_cast<RegValue>(v); }

bool compare_i(CmpOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

bool compare_f(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

void execute_alu(const Instr& instr, ThreadCtx& ctx) {
  auto rs = [&](unsigned i) -> RegValue { return ctx.regs[instr.src[i]]; };
  // Second integer/float operand: register or immediate.
  auto op2i = [&]() -> std::int64_t { return instr.use_imm ? instr.imm : s64(rs(1)); };
  auto op2f = [&]() -> double {
    return instr.use_imm ? static_cast<double>(instr.imm) : bits_to_f64(rs(1));
  };
  auto wr = [&](RegValue v) { ctx.regs[instr.dst] = v; };
  auto wrf = [&](double v) { ctx.regs[instr.dst] = f64_to_bits(v); };

  switch (instr.op) {
    case Opcode::kMov: wr(rs(0)); break;
    case Opcode::kMovI: wr(u64(instr.imm)); break;
    case Opcode::kIAdd: wr(u64(s64(rs(0)) + op2i())); break;
    case Opcode::kISub: wr(u64(s64(rs(0)) - op2i())); break;
    case Opcode::kIMul: wr(u64(s64(rs(0)) * op2i())); break;
    case Opcode::kIMad:
      // Rd = Rs0 * (Rs1 or imm) + Rs2
      wr(u64(s64(rs(0)) * (instr.use_imm ? instr.imm : s64(rs(1))) + s64(rs(2))));
      break;
    case Opcode::kIDiv: {
      const std::int64_t d = op2i();
      wr(u64(d == 0 ? 0 : s64(rs(0)) / d));
      break;
    }
    case Opcode::kIRem: {
      const std::int64_t d = op2i();
      wr(u64(d == 0 ? 0 : s64(rs(0)) % d));
      break;
    }
    case Opcode::kAnd: wr(rs(0) & static_cast<RegValue>(op2i())); break;
    case Opcode::kOr: wr(rs(0) | static_cast<RegValue>(op2i())); break;
    case Opcode::kXor: wr(rs(0) ^ static_cast<RegValue>(op2i())); break;
    case Opcode::kShl: wr(rs(0) << (static_cast<RegValue>(op2i()) & 63)); break;
    case Opcode::kShr: wr(rs(0) >> (static_cast<RegValue>(op2i()) & 63)); break;
    case Opcode::kIMin: wr(u64(std::min(s64(rs(0)), op2i()))); break;
    case Opcode::kIMax: wr(u64(std::max(s64(rs(0)), op2i()))); break;
    case Opcode::kFAdd: wrf(bits_to_f64(rs(0)) + op2f()); break;
    case Opcode::kFSub: wrf(bits_to_f64(rs(0)) - op2f()); break;
    case Opcode::kFMul: wrf(bits_to_f64(rs(0)) * op2f()); break;
    case Opcode::kFFma:
      wrf(bits_to_f64(rs(0)) * (instr.use_imm ? static_cast<double>(instr.imm) : bits_to_f64(rs(1))) +
          bits_to_f64(rs(2)));
      break;
    case Opcode::kFDiv: wrf(bits_to_f64(rs(0)) / op2f()); break;
    case Opcode::kFMin: wrf(std::fmin(bits_to_f64(rs(0)), op2f())); break;
    case Opcode::kFMax: wrf(std::fmax(bits_to_f64(rs(0)), op2f())); break;
    case Opcode::kFSqrt: wrf(std::sqrt(bits_to_f64(rs(0)))); break;
    case Opcode::kFAbs: wrf(std::fabs(bits_to_f64(rs(0)))); break;
    case Opcode::kFNeg: wrf(-bits_to_f64(rs(0))); break;
    case Opcode::kI2F: wrf(static_cast<double>(s64(rs(0)))); break;
    case Opcode::kF2I: wr(u64(static_cast<std::int64_t>(bits_to_f64(rs(0))))); break;
    case Opcode::kISetp:
      ctx.preds[instr.pred_dst] = compare_i(instr.cmp, s64(rs(0)), op2i());
      break;
    case Opcode::kFSetp:
      ctx.preds[instr.pred_dst] = compare_f(instr.cmp, bits_to_f64(rs(0)), op2f());
      break;
    default:
      throw std::logic_error(std::string("execute_alu: not an ALU op: ") + opcode_name(instr.op));
  }
}

Addr effective_address(const Instr& instr, const ThreadCtx& ctx) {
  return static_cast<Addr>(static_cast<std::int64_t>(ctx.regs[instr.src[0]]) + instr.imm);
}

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "NOP";
    case Opcode::kMov: return "MOV";
    case Opcode::kMovI: return "MOVI";
    case Opcode::kIAdd: return "IADD";
    case Opcode::kISub: return "ISUB";
    case Opcode::kIMul: return "IMUL";
    case Opcode::kIMad: return "IMAD";
    case Opcode::kIDiv: return "IDIV";
    case Opcode::kIRem: return "IREM";
    case Opcode::kAnd: return "AND";
    case Opcode::kOr: return "OR";
    case Opcode::kXor: return "XOR";
    case Opcode::kShl: return "SHL";
    case Opcode::kShr: return "SHR";
    case Opcode::kIMin: return "IMIN";
    case Opcode::kIMax: return "IMAX";
    case Opcode::kFAdd: return "FADD";
    case Opcode::kFSub: return "FSUB";
    case Opcode::kFMul: return "FMUL";
    case Opcode::kFFma: return "FFMA";
    case Opcode::kFDiv: return "FDIV";
    case Opcode::kFMin: return "FMIN";
    case Opcode::kFMax: return "FMAX";
    case Opcode::kFSqrt: return "FSQRT";
    case Opcode::kFAbs: return "FABS";
    case Opcode::kFNeg: return "FNEG";
    case Opcode::kI2F: return "I2F";
    case Opcode::kF2I: return "F2I";
    case Opcode::kISetp: return "ISETP";
    case Opcode::kFSetp: return "FSETP";
    case Opcode::kLd: return "LD";
    case Opcode::kSt: return "ST";
    case Opcode::kShmLd: return "SHM.LD";
    case Opcode::kShmSt: return "SHM.ST";
    case Opcode::kLdc: return "LDC";
    case Opcode::kBra: return "BRA";
    case Opcode::kBar: return "BAR";
    case Opcode::kExit: return "EXIT";
    case Opcode::kOfldBeg: return "OFLD.BEG";
    case Opcode::kOfldEnd: return "OFLD.END";
  }
  return "?";
}

const char* cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "EQ";
    case CmpOp::kNe: return "NE";
    case CmpOp::kLt: return "LT";
    case CmpOp::kLe: return "LE";
    case CmpOp::kGt: return "GT";
    case CmpOp::kGe: return "GE";
  }
  return "?";
}

std::string to_string(const Instr& instr) {
  std::ostringstream os;
  if (instr.guard_pred != kNoPred) {
    os << '@' << (instr.guard_sense ? "" : "!") << 'P' << int(instr.guard_pred) << ' ';
  }
  os << opcode_name(instr.op);
  if (instr.is_mem()) {
    os << (instr.mem_width == 4 ? (instr.mem_f32 ? ".F32" : ".32") : ".64");
  }
  if (instr.on_nsu) os << "@NSU";
  auto reg = [](std::uint8_t r) { return "R" + std::to_string(int(r)); };
  switch (instr.op) {
    case Opcode::kLd:
    case Opcode::kShmLd:
    case Opcode::kLdc:
      os << ' ' << reg(instr.dst) << ", [" << reg(instr.src[0]) << '+' << instr.imm << ']';
      break;
    case Opcode::kSt:
    case Opcode::kShmSt:
      os << " [" << reg(instr.src[0]) << '+' << instr.imm << "], " << reg(instr.src[1]);
      break;
    case Opcode::kBra:
      os << " ->" << instr.target;
      break;
    case Opcode::kISetp:
    case Opcode::kFSetp:
      os << ' ' << 'P' << int(instr.pred_dst) << ", " << cmp_name(instr.cmp) << ", "
         << reg(instr.src[0]) << ", ";
      if (instr.use_imm) os << instr.imm; else os << reg(instr.src[1]);
      break;
    case Opcode::kMovI:
      os << ' ' << reg(instr.dst) << ", " << instr.imm;
      break;
    case Opcode::kOfldBeg:
    case Opcode::kOfldEnd:
      os << " #" << instr.imm;
      break;
    case Opcode::kNop:
    case Opcode::kBar:
    case Opcode::kExit:
      break;
    default: {
      os << ' ' << reg(instr.dst);
      const unsigned n = instr.num_srcs();
      const bool three_src = instr.op == Opcode::kIMad || instr.op == Opcode::kFFma;
      // Operand slots to print: an immediate still occupies slot 1.
      const unsigned total = three_src ? 3 : (instr.use_imm ? 2 : n);
      for (unsigned i = 0; i < total; ++i) {
        // The immediate always replaces the second operand when present.
        if (i == 1 && instr.use_imm) {
          os << ", " << instr.imm;
        } else {
          os << ", " << reg(instr.src[i]);
        }
      }
      break;
    }
  }
  return os.str();
}

}  // namespace sndp
