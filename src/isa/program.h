// Programs: a linear instruction sequence plus offload-block metadata.
//
// A workload produces one *original* Program.  The offload analyzer/codegen
// (src/offload) transforms it into a KernelImage: the GPU-side program with
// OFLD.BEG/OFLD.END markers and @NSU-marked instructions, plus the NSU-side
// program that is "appended to the workload executable" (paper §3.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace sndp {

// Metadata for one static offload block (paper Fig. 3 / §3.2).
struct OffloadBlockInfo {
  unsigned block_id = 0;
  // Instruction index range in the GPU program: gpu_begin is the OFLD.BEG,
  // gpu_end is the matching OFLD.END.
  unsigned gpu_begin = 0;
  unsigned gpu_end = 0;
  // Entry index of the block's code in the NSU program.
  unsigned nsu_entry = 0;
  unsigned nsu_inst_count = 0;  // NSU instructions incl. OFLD.BEG/END (Table 1)
  unsigned num_loads = 0;       // read-data buffer entries to reserve
  unsigned num_stores = 0;      // write-address buffer entries to reserve
  std::vector<std::uint8_t> regs_in;   // live-in registers sent GPU -> NSU
  std::vector<std::uint8_t> regs_out;  // live-out registers sent NSU -> GPU
  bool indirect_single_load = false;   // §4.4 divergent-load block
  bool needs_preds = false;            // NSU-side code uses guard predicates
  double static_score = 0.0;           // Eq. 1 score at analysis time

  // Original instructions inside the block (between the markers).
  unsigned body_size() const { return gpu_end - gpu_begin - 1; }
};

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Instr> code) : code_(std::move(code)) {}

  const std::vector<Instr>& code() const { return code_; }
  std::vector<Instr>& code() { return code_; }
  std::size_t size() const { return code_.size(); }
  const Instr& at(std::size_t i) const { return code_.at(i); }

  // Structural checks: branch targets in range, OFLD markers balanced,
  // register/predicate indices valid.  Throws std::invalid_argument.
  void validate() const;

  // Boundaries of basic blocks: sorted instruction indices that start a
  // block (branch targets, fall-throughs after branches/barriers/exit).
  std::vector<unsigned> basic_block_starts() const;

  std::string disassemble() const;

 private:
  std::vector<Instr> code_;
};

// GPU + NSU code for one kernel after offload analysis.
struct KernelImage {
  Program gpu;
  Program nsu;
  std::vector<OffloadBlockInfo> blocks;

  const OffloadBlockInfo& block(unsigned id) const { return blocks.at(id); }
};

// Fluent builder used by the workload generators (and tests) to write
// kernels without dealing with raw Instr fields.
class ProgramBuilder {
 public:
  ProgramBuilder& movi(unsigned rd, std::int64_t imm);
  ProgramBuilder& mov(unsigned rd, unsigned rs);
  // rd = rs0 <op> rs1
  ProgramBuilder& alu(Opcode op, unsigned rd, unsigned rs0, unsigned rs1);
  // rd = rs0 <op> imm
  ProgramBuilder& alui(Opcode op, unsigned rd, unsigned rs0, std::int64_t imm);
  // rd = rs0 * rs1 + rs2
  ProgramBuilder& mad(unsigned rd, unsigned rs0, unsigned rs1, unsigned rs2);
  // rd = rs0 * imm + rs2
  ProgramBuilder& madi(unsigned rd, unsigned rs0, std::int64_t imm, unsigned rs2);
  ProgramBuilder& fma(unsigned rd, unsigned rs0, unsigned rs1, unsigned rs2);
  ProgramBuilder& unary(Opcode op, unsigned rd, unsigned rs0);

  // Memory; width in {4, 8}; f32 selects float<->double conversion.
  ProgramBuilder& ld(unsigned rd, unsigned addr_reg, std::int64_t offset = 0,
                     unsigned width = 8, bool f32 = false);
  ProgramBuilder& st(unsigned addr_reg, unsigned data_reg, std::int64_t offset = 0,
                     unsigned width = 8, bool f32 = false);
  ProgramBuilder& shm_ld(unsigned rd, unsigned addr_reg, std::int64_t offset = 0);
  ProgramBuilder& shm_st(unsigned addr_reg, unsigned data_reg, std::int64_t offset = 0);
  ProgramBuilder& ldc(unsigned rd, unsigned addr_reg, std::int64_t offset = 0,
                      unsigned width = 8, bool f32 = false);

  ProgramBuilder& isetp(unsigned pd, CmpOp cmp, unsigned rs0, unsigned rs1);
  ProgramBuilder& isetpi(unsigned pd, CmpOp cmp, unsigned rs0, std::int64_t imm);
  ProgramBuilder& fsetp(unsigned pd, CmpOp cmp, unsigned rs0, unsigned rs1);

  // Guard the *next* instruction with @P{pd} (or @!P{pd}).
  ProgramBuilder& pred(unsigned pd, bool sense = true);

  // Labels and branches.
  ProgramBuilder& label(const std::string& name);
  ProgramBuilder& bra(const std::string& label);
  ProgramBuilder& bar();
  ProgramBuilder& exit();
  ProgramBuilder& nop();

  // Finalize: resolves labels, validates, returns the program.
  Program build();

 private:
  Instr& push(Instr instr);

  std::vector<Instr> code_;
  std::vector<std::pair<std::string, unsigned>> labels_;
  std::vector<std::pair<unsigned, std::string>> fixups_;  // (instr idx, label)
  std::int8_t pending_pred_ = kNoPred;
  bool pending_sense_ = true;
};

}  // namespace sndp
