#include "obs/latency.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "sim/trace.h"

namespace sndp {

const char* path_class_name(PathClass c) {
  switch (c) {
    case PathClass::kGpuReadL2: return "gpu_read_l2";
    case PathClass::kGpuReadDram: return "gpu_read_dram";
    case PathClass::kGpuWrite: return "gpu_write";
    case PathClass::kRdfCacheHit: return "rdf_cache_hit";
    case PathClass::kRdfLocal: return "rdf_local";
    case PathClass::kRdfRemote: return "rdf_remote";
    case PathClass::kNsuWriteLocal: return "nsu_write_local";
    case PathClass::kNsuWriteRemote: return "nsu_write_remote";
    case PathClass::kOfldCmd: return "ofld_cmd";
    case PathClass::kCredit: return "credit";
    case PathClass::kCount: break;
  }
  return "?";
}

const char* lat_segment_name(LatSegment s) {
  switch (s) {
    case LatSegment::kQueue: return "queue";
    case LatSegment::kLink: return "link";
    case LatSegment::kDram: return "dram";
    case LatSegment::kCache: return "cache";
    case LatSegment::kOther: return "other";
    case LatSegment::kCount: break;
  }
  return "?";
}

// --- Log2Histogram ---------------------------------------------------------

unsigned Log2Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  return std::min<unsigned>(kNumBuckets - 1, static_cast<unsigned>(std::bit_width(v)));
}

std::uint64_t Log2Histogram::bucket_lo(unsigned b) {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t Log2Histogram::bucket_hi(unsigned b) {
  if (b == 0) return 0;
  if (b >= kNumBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Log2Histogram::record(std::uint64_t v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  for (unsigned b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencySummary::merge_from(const LatencySummary& o) {
  for (std::size_t c = 0; c < kNumPathClasses; ++c) {
    per_class[c].merge(o.per_class[c]);
    for (std::size_t s = 0; s < kNumLatSegments; ++s) seg_sum_ps[c][s] += o.seg_sum_ps[c][s];
  }
  if (o.per_tenant.size() > per_tenant.size()) per_tenant.resize(o.per_tenant.size());
  for (std::size_t t = 0; t < o.per_tenant.size(); ++t) {
    for (std::size_t c = 0; c < kNumPathClasses; ++c) {
      per_tenant[t][c].merge(o.per_tenant[t][c]);
    }
  }
  started += o.started;
  finished += o.finished;
  cancelled += o.cancelled;
  spans_sampled += o.spans_sampled;
  spans_dropped += o.spans_dropped;
}

double Log2Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);
  // 0-based fractional rank; linear interpolation inside the bucket that
  // holds it, clamped to the exact [min, max] envelope.
  const double rank = q * static_cast<double>(count_ - 1);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    cum += buckets_[b];
    const double hi_rank = static_cast<double>(cum - 1);
    if (rank > hi_rank) continue;
    const double lo = static_cast<double>(bucket_lo(b));
    const double hi = static_cast<double>(bucket_hi(b));
    double frac = 0.5;
    if (buckets_[b] > 1) frac = (rank - lo_rank) / (hi_rank - lo_rank);
    double v = lo + frac * (hi - lo);
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max_));
    return v;
  }
  return static_cast<double>(max_);  // unreachable: rank < count
}

// --- LatencyTracer ---------------------------------------------------------

LatencyTracer::LatencyTracer(unsigned sample, std::size_t max_spans)
    : sample_(sample), max_spans_(max_spans) {}

LatencyTracer::Span* LatencyTracer::span_of(const Packet& p) {
  if (p.lt.span_id == 0) return nullptr;
  return &spans_[p.lt.span_id - 1];
}

void LatencyTracer::record_hop(const Packet& p, const char* label, unsigned node, TimePs ps) {
  if (Span* s = span_of(p)) {
    s->hops.push_back(SpanHop{label, static_cast<std::uint16_t>(node), ps});
  }
}

void LatencyTracer::start(Packet& p, TimePs now, unsigned node) {
  p.lt = PacketTiming{};
  p.lt.origin_ps = now;
  p.lt.last_ps = now;
  p.lt.active = true;
  ++summary_.started;
  // Stratified deterministic sampling: the 1st, (N+1)th, ... tracked request
  // of each packet type gets a full-fidelity span.
  const auto ti = static_cast<std::size_t>(p.type);
  const std::uint64_t ordinal = started_by_type_[ti]++;
  if (sample_ == 0 || ordinal % sample_ != 0) return;
  ++summary_.spans_sampled;
  if (spans_.size() >= max_spans_) {
    ++summary_.spans_dropped;
    return;
  }
  Span s;
  s.origin_ps = now;
  s.origin_node = static_cast<std::uint16_t>(node);
  spans_.push_back(std::move(s));
  p.lt.span_id = static_cast<std::uint32_t>(spans_.size());
}

void LatencyTracer::queue_hop(Packet& p, TimePs now, const char* label, unsigned node) {
  if (!p.lt.active) return;
  if (now > p.lt.last_ps) {
    p.lt.queue_ps += now - p.lt.last_ps;
    p.lt.last_ps = now;
  }
  record_hop(p, label, node, now);
}

void LatencyTracer::exec_hop(Packet& p, TimePs now, const char* label, unsigned node) {
  if (!p.lt.active) return;
  if (now > p.lt.last_ps) p.lt.last_ps = now;
  record_hop(p, label, node, now);
}

void LatencyTracer::add_link(Packet& p, TimePs wait_ps, TimePs fly_ps) {
  if (!p.lt.active) return;
  p.lt.queue_ps += wait_ps;
  p.lt.link_ps += fly_ps;
  p.lt.last_ps += wait_ps + fly_ps;
}

void LatencyTracer::add_cache(Packet& p, TimePs d) {
  if (!p.lt.active) return;
  p.lt.cache_ps += d;
  p.lt.last_ps += d;
}

void LatencyTracer::add_vault(Packet& p, TimePs enqueue_ps, TimePs done_ps, TimePs service_ps,
                              unsigned node) {
  if (!p.lt.active) return;
  const TimePs resident = done_ps > enqueue_ps ? done_ps - enqueue_ps : 0;
  const TimePs service = std::min(service_ps, resident);
  p.lt.dram_ps += service;
  p.lt.queue_ps += resident - service;
  p.lt.last_ps = done_ps;
  record_hop(p, "dram", node, done_ps);
}

void LatencyTracer::set_path(Packet& p, PathClass c) {
  if (!p.lt.active) return;
  p.lt.path = static_cast<std::uint8_t>(c);
  p.lt.has_path = true;
}

void LatencyTracer::transfer(const Packet& from, Packet& to) { to.lt = from.lt; }

void LatencyTracer::adopt(Packet& p, const PacketTiming& parked) { p.lt = parked; }

void LatencyTracer::finish(Packet& p, PathClass cls, TimePs end_ps, unsigned node) {
  if (!p.lt.active) return;
  const auto ci = static_cast<std::size_t>(cls);
  const std::uint64_t total = end_ps > p.lt.origin_ps ? end_ps - p.lt.origin_ps : 0;
  summary_.per_class[ci].record(total);
  if (p.tenant < summary_.per_tenant.size()) {
    summary_.per_tenant[p.tenant][ci].record(total);
  }
  ++summary_.finished;
  auto& segs = summary_.seg_sum_ps[ci];
  const std::uint64_t explicit_ps = p.lt.queue_ps + p.lt.link_ps + p.lt.dram_ps + p.lt.cache_ps;
  segs[static_cast<std::size_t>(LatSegment::kQueue)] += p.lt.queue_ps;
  segs[static_cast<std::size_t>(LatSegment::kLink)] += p.lt.link_ps;
  segs[static_cast<std::size_t>(LatSegment::kDram)] += p.lt.dram_ps;
  segs[static_cast<std::size_t>(LatSegment::kCache)] += p.lt.cache_ps;
  segs[static_cast<std::size_t>(LatSegment::kOther)] +=
      total > explicit_ps ? total - explicit_ps : 0;
  if (Span* s = span_of(p)) {
    s->path = cls;
    s->end_ps = end_ps;
    s->end_node = static_cast<std::uint16_t>(node);
    s->finished = true;
  }
  p.lt.active = false;
  p.lt.span_id = 0;
}

void LatencyTracer::finish_stamped(Packet& p, TimePs end_ps, unsigned node) {
  if (!p.lt.active) return;
  const PathClass cls =
      p.lt.has_path ? static_cast<PathClass>(p.lt.path) : PathClass::kCount;
  if (cls == PathClass::kCount) {  // defensive: unstamped finish counts as cancel
    cancel(p);
    return;
  }
  finish(p, cls, end_ps, node);
}

void LatencyTracer::cancel(Packet& p) {
  if (!p.lt.active) return;
  ++summary_.cancelled;
  p.lt.active = false;
  p.lt.span_id = 0;
}

void LatencyTracer::export_stats(StatSet& out) const {
  for (std::size_t c = 0; c < kNumPathClasses; ++c) {
    const Log2Histogram& h = summary_.per_class[c];
    const std::string base = std::string("lat.") + path_class_name(static_cast<PathClass>(c));
    out.set(base + ".count", static_cast<double>(h.count()));
    out.set(base + ".mean_ps", h.mean());
    out.set(base + ".p50_ps", h.percentile(0.50));
    out.set(base + ".p95_ps", h.percentile(0.95));
    out.set(base + ".p99_ps", h.percentile(0.99));
    out.set(base + ".max_ps", static_cast<double>(h.max()));
  }
  for (std::size_t t = 0; t < summary_.per_tenant.size(); ++t) {
    for (std::size_t c = 0; c < kNumPathClasses; ++c) {
      const Log2Histogram& h = summary_.per_tenant[t][c];
      if (h.count() == 0) continue;
      const std::string base = std::string("lat.t") + std::to_string(t) + "." +
                               path_class_name(static_cast<PathClass>(c));
      out.set(base + ".count", static_cast<double>(h.count()));
      out.set(base + ".p50_ps", h.percentile(0.50));
      out.set(base + ".p95_ps", h.percentile(0.95));
      out.set(base + ".p99_ps", h.percentile(0.99));
    }
  }
  for (std::size_t s = 0; s < kNumLatSegments; ++s) {
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < kNumPathClasses; ++c) sum += summary_.seg_sum_ps[c][s];
    out.set(std::string("lat.seg.") + lat_segment_name(static_cast<LatSegment>(s)) + ".sum_ps",
            static_cast<double>(sum));
  }
  out.set("sim.latency_spans", static_cast<double>(summary_.spans_sampled - summary_.spans_dropped));
  out.set("sim.latency_spans_dropped", static_cast<double>(summary_.spans_dropped));
}

void LatencyTracer::emit_trace(TraceWriter& trace) const {
  std::uint64_t id = 0;
  for (const Span& s : spans_) {
    ++id;  // ids are stable per span regardless of finished state
    if (!s.finished) continue;
    const std::string name = path_class_name(s.path);
    // One duration slice per hop-to-hop leg so the flow arrows have
    // enclosing slices to bind to.
    std::uint16_t prev_node = s.origin_node;
    TimePs prev_ps = s.origin_ps;
    for (const SpanHop& h : s.hops) {
      if (h.ps > prev_ps) {
        trace.complete(name + ":" + h.label, "latency_span", h.node, prev_ps, h.ps - prev_ps);
      }
      prev_node = h.node;
      prev_ps = h.ps;
    }
    if (s.end_ps > prev_ps) {
      trace.complete(name + ":finish", "latency_span", s.end_node, prev_ps, s.end_ps - prev_ps);
    }
    (void)prev_node;
    trace.flow('s', name, "latency", s.origin_node, s.origin_ps, id);
    for (const SpanHop& h : s.hops) trace.flow('t', name, "latency", h.node, h.ps, id);
    trace.flow('f', name, "latency", s.end_node, s.end_ps, id);
  }
}

void print_latency_table(const LatencySummary& s, const char* indent) {
  std::printf("%s%-16s %10s %12s %12s %12s %12s\n", indent, "path class", "count", "p50 (ns)",
              "p95 (ns)", "p99 (ns)", "mean (ns)");
  for (std::size_t c = 0; c < kNumPathClasses; ++c) {
    const Log2Histogram& h = s.per_class[c];
    if (h.count() == 0) continue;
    std::printf("%s%-16s %10llu %12.1f %12.1f %12.1f %12.1f\n", indent,
                path_class_name(static_cast<PathClass>(c)),
                static_cast<unsigned long long>(h.count()), h.percentile(0.50) * 1e-3,
                h.percentile(0.95) * 1e-3, h.percentile(0.99) * 1e-3, h.mean() * 1e-3);
  }
}

}  // namespace sndp
