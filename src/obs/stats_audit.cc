#include "obs/stats_audit.h"

#include <cinttypes>
#include <cstdio>

#include "common/log.h"

namespace sndp {
namespace {

// Cumulative fields checked for monotonicity between consecutive snapshots.
struct CumulativeField {
  const char* name;
  std::uint64_t AuditSnapshot::* field;
};

constexpr CumulativeField kCumulative[] = {
    {"l1_hits", &AuditSnapshot::l1_hits},
    {"l1_miss_new", &AuditSnapshot::l1_miss_new},
    {"l1_merged", &AuditSnapshot::l1_merged},
    {"sm_issued", &AuditSnapshot::sm_issued},
    {"sm_rdf_probes", &AuditSnapshot::sm_rdf_probes},
    {"sm_rdf_l1_hits", &AuditSnapshot::sm_rdf_l1_hits},
    {"offloads_started", &AuditSnapshot::offloads_started},
    {"inline_blocks", &AuditSnapshot::inline_blocks},
    {"ofld_acks", &AuditSnapshot::ofld_acks},
    {"inline_block_instrs", &AuditSnapshot::inline_block_instrs},
    {"acked_block_instrs", &AuditSnapshot::acked_block_instrs},
    {"l2_hits", &AuditSnapshot::l2_hits},
    {"l2_miss_new", &AuditSnapshot::l2_miss_new},
    {"l2_merged", &AuditSnapshot::l2_merged},
    {"l2_read_reqs", &AuditSnapshot::l2_read_reqs},
    {"rdf_l2_probes", &AuditSnapshot::rdf_l2_probes},
    {"rdf_l2_hits", &AuditSnapshot::rdf_l2_hits},
    {"mem_read_resps", &AuditSnapshot::mem_read_resps},
    {"gpu_rx_packets", &AuditSnapshot::gpu_rx_packets},
    {"gov_block_instrs", &AuditSnapshot::gov_block_instrs},
    {"net_injected", &AuditSnapshot::net_injected},
    {"hmc_rx_packets", &AuditSnapshot::hmc_rx_packets},
    {"link_bytes", &AuditSnapshot::link_bytes},
    {"class_bytes", &AuditSnapshot::class_bytes},
    {"vault_reads", &AuditSnapshot::vault_reads},
    {"vault_writes", &AuditSnapshot::vault_writes},
    {"vault_activates", &AuditSnapshot::vault_activates},
    {"mem_read_completions", &AuditSnapshot::mem_read_completions},
    {"rdf_completions", &AuditSnapshot::rdf_completions},
    {"mem_write_completions", &AuditSnapshot::mem_write_completions},
    {"nsu_write_completions", &AuditSnapshot::nsu_write_completions},
    {"page_copy_read_completions", &AuditSnapshot::page_copy_read_completions},
    {"page_copy_write_completions", &AuditSnapshot::page_copy_write_completions},
    {"dram_read_bytes", &AuditSnapshot::dram_read_bytes},
    {"dram_write_bytes", &AuditSnapshot::dram_write_bytes},
    {"nsu_blocks_completed", &AuditSnapshot::nsu_blocks_completed},
    {"nsu_instrs", &AuditSnapshot::nsu_instrs},
    {"nsu_lane_ops", &AuditSnapshot::nsu_lane_ops},
    {"nsu_finished_block_instrs", &AuditSnapshot::nsu_finished_block_instrs},
    {"pages_migrated", &AuditSnapshot::pages_migrated},
    {"migration_bytes", &AuditSnapshot::migration_bytes},
};

}  // namespace

std::string AuditViolation::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "audit violation at %s: %s.%s lhs=%.17g rhs=%.17g delta=%.17g",
                epoch < 0 ? "end-of-run" : ("epoch " + std::to_string(epoch)).c_str(),
                component.c_str(), check.c_str(), lhs, rhs, delta());
  return buf;
}

void StatsAudit::expect(bool cond, std::int64_t epoch, const char* component,
                        const char* check, double lhs, double rhs) {
  ++checks_run_;
  if (cond) return;
  // Report the first failure of each check loudly; keep the list bounded.
  if (violations_.size() >= kMaxViolations) {
    ++suppressed_violations_;
    return;
  }
  AuditViolation v;
  v.epoch = epoch;
  v.component = component;
  v.check = check;
  v.lhs = lhs;
  v.rhs = rhs;
  bool first_of_kind = true;
  for (const AuditViolation& old : violations_) {
    if (old.check == v.check && old.component == v.component) {
      first_of_kind = false;
      break;
    }
  }
  if (first_of_kind) SNDP_WARN("audit", "%s", v.to_string().c_str());
  violations_.push_back(std::move(v));
}

void StatsAudit::eq(std::uint64_t lhs, std::uint64_t rhs, std::int64_t epoch,
                    const char* component, const char* check) {
  expect(lhs == rhs, epoch, component, check, static_cast<double>(lhs),
         static_cast<double>(rhs));
}

void StatsAudit::le(std::uint64_t lhs, std::uint64_t rhs, std::int64_t epoch,
                    const char* component, const char* check) {
  expect(lhs <= rhs, epoch, component, check, static_cast<double>(lhs),
         static_cast<double>(rhs));
}

void StatsAudit::instant_checks(std::int64_t epoch, const AuditSnapshot& s) {
  // --- Offload-block instruction accounting -------------------------------
  // The governor's per-epoch climb signal is fed from exactly two call
  // sites (inline completion, ACK drain); the SMs mirror both.
  eq(s.gov_block_instrs, s.inline_block_instrs + s.acked_block_instrs, epoch,
     "governor", "block_instr_sources");
  // Offload lifecycle: a block is started, finishes at an NSU, and its ACK
  // is eventually drained by the owning SM.
  le(s.ofld_acks, s.nsu_blocks_completed, epoch, "offload", "acks_le_completed");
  le(s.nsu_blocks_completed, s.offloads_started, epoch, "offload",
     "completed_le_started");
  le(s.acked_block_instrs, s.nsu_finished_block_instrs, epoch, "offload",
     "acked_instrs_le_finished");
  // An NSU warp instruction executes at most warp_width lanes.
  le(s.nsu_lane_ops, s.nsu_instrs * s.warp_width, epoch, "nsu",
     "lane_ops_le_instrs");

  // --- Memory request flow ------------------------------------------------
  // Every L1 read access (demand or RDF probe) lands in exactly one bucket.
  le(s.sm_rdf_l1_hits, s.sm_rdf_probes, epoch, "sm", "rdf_hits_le_probes");
  le(s.sm_rdf_probes - s.sm_rdf_l1_hits, s.l1_miss_new, epoch, "l1",
     "probe_misses_le_misses");
  // Same-callsite identity: every kMemRead retired at an L2 slice and every
  // RDF L2 probe increments exactly one of {hit, new miss, MSHR merge}.
  eq(s.l2_hits + s.l2_miss_new + s.l2_merged, s.l2_read_reqs + s.rdf_l2_probes,
     epoch, "l2", "access_outcomes");
  // Requests retired at L2 never exceed the kMemRead packets the SMs made.
  le(s.l2_read_reqs, s.mem_reads_created(), epoch, "l2",
     "retired_le_created");
  // RDF probes land in the same L2 hit/miss buckets as demand reads.
  le(s.rdf_l2_hits, s.rdf_l2_probes, epoch, "l2", "rdf_hits_le_probes");
  le(s.rdf_l2_probes - s.rdf_l2_hits, s.l2_miss_new, epoch, "l2",
     "probe_misses_le_misses");
  // One fill response / one vault completion per fill-generating L2 miss.
  le(s.mem_read_resps, s.l2_fill_misses(), epoch, "gpu", "fills_le_l2_misses");
  le(s.mem_read_completions, s.l2_fill_misses(), epoch, "vault",
     "read_completions_le_l2_misses");
  // Vault service counters are incremented when a burst is scheduled, which
  // precedes the completion callback.
  le(s.mem_read_completions + s.rdf_completions + s.page_copy_read_completions,
     s.vault_reads, epoch, "vault", "read_completions_le_serviced");
  le(s.mem_write_completions + s.nsu_write_completions +
         s.page_copy_write_completions,
     s.vault_writes, epoch, "vault", "write_completions_le_serviced");
  // DRAM byte counters are incremented in the same completion handler as the
  // per-type completion counters (reads always move a full line; writes move
  // at most a line of payload).
  eq(s.dram_read_bytes,
     (s.mem_read_completions + s.rdf_completions + s.page_copy_read_completions) *
         s.line_bytes,
     epoch, "dram", "read_bytes_pairing");
  le(s.dram_write_bytes,
     (s.mem_write_completions + s.nsu_write_completions +
      s.page_copy_write_completions) *
         s.line_bytes,
     epoch, "dram", "write_bytes_bound");

  // --- Placement migration ------------------------------------------------
  // Both counters increment together in the policy's re-home step, one page
  // of traffic per migration.
  eq(s.migration_bytes, s.pages_migrated * s.page_bytes, epoch, "mem",
     "migration_bytes_pairing");
  // The copy traffic behind that charge: each migration owes the fabric one
  // page of line reads at the old home and one page of line writes at the
  // new one.  Migration counters lead the copy (the policy flips before the
  // reads enqueue) and reads lead writes (the bulk packet ships only when
  // the page is fully read), so both are <= at every instant and tie out
  // exactly once drained (check_final).
  const std::uint64_t lines_per_page = s.page_bytes / s.line_bytes;
  le(s.page_copy_read_completions, s.pages_migrated * lines_per_page, epoch,
     "mem", "copy_reads_le_migrations");
  le(s.page_copy_write_completions, s.page_copy_read_completions, epoch,
     "mem", "copy_writes_le_reads");

  // --- NoC ----------------------------------------------------------------
  // Packet conservation: everything injected is sitting in a receive
  // channel or has been ejected by the GPU or an HMC.
  eq(s.net_injected, s.gpu_rx_packets + s.hmc_rx_packets + s.net_in_flight,
     epoch, "network", "packet_conservation");
  // Per-link byte counters and the per-class byte counters are fed from the
  // same send path.
  eq(s.link_bytes, s.class_bytes, epoch, "network", "link_byte_classes");

  // --- NDP buffer credits -------------------------------------------------
  le(s.buf_free_cmd, s.buf_cap_cmd, epoch, "buffers", "cmd_free_le_cap");
  le(s.buf_free_read_data, s.buf_cap_read_data, epoch, "buffers",
     "read_data_free_le_cap");
  le(s.buf_free_write_addr, s.buf_cap_write_addr, epoch, "buffers",
     "write_addr_free_le_cap");

  // --- Per-tenant splits --------------------------------------------------
  // Same-callsite identities: each per-tenant counter is bumped at the very
  // site that bumps the fabric total, so the split must sum to the total at
  // every instant.  Empty vectors (single-tenant runs) skip the checks.
  if (!s.tenant_issued.empty()) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : s.tenant_issued) sum += v;
    eq(sum, s.sm_issued, epoch, "tenants", "issued_sums_to_total");
  }
  if (!s.tenant_l2_reads.empty()) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : s.tenant_l2_reads) sum += v;
    eq(sum, s.l2_read_reqs, epoch, "tenants", "l2_reads_sum_to_total");
  }
  if (!s.tenant_gov_instrs.empty()) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : s.tenant_gov_instrs) sum += v;
    eq(sum, s.gov_block_instrs, epoch, "tenants", "gov_instrs_sum_to_total");
  }

  // --- Cycle-stack profiler -----------------------------------------------
  // Exhaustive accounting: every counted cycle of every SM / NSU / vault is
  // in exactly one bucket.  Holds at every instant — classification happens
  // in the same tick that counts the cycle, and reclassification (pending
  // dep -> serve class, dispatch-idle -> drained) is sum-preserving.
  if (s.cyc_on) {
    for (std::size_t i = 0; i < s.cyc_sm_sum.size(); ++i) {
      eq(s.cyc_sm_sum[i], s.cyc_sm_counted[i], epoch, "cycle_stack",
         "sm_bucket_sum_eq_counted");
    }
    for (std::size_t i = 0; i < s.cyc_nsu_sum.size(); ++i) {
      eq(s.cyc_nsu_sum[i], s.cyc_nsu_counted[i], epoch, "cycle_stack",
         "nsu_bucket_sum_eq_counted");
    }
    for (std::size_t i = 0; i < s.cyc_vault_sum.size(); ++i) {
      eq(s.cyc_vault_sum[i], s.cyc_vault_counted[i], epoch, "cycle_stack",
         "vault_bucket_sum_eq_counted");
    }
    // The fine buckets refine the legacy counters: each group sums to its
    // coarse Fig. 8 counter exactly, so the legacy breakdown is derivable.
    eq(s.cyc_sm_issue, s.sm_issued, epoch, "cycle_stack", "issue_eq_issued");
    eq(s.cyc_sm_exec_group, s.sm_stall_exec_busy, epoch, "cycle_stack",
       "exec_group_eq_stall_exec_busy");
    eq(s.cyc_sm_dep_group, s.sm_stall_dependency, epoch, "cycle_stack",
       "dep_group_eq_stall_dependency");
    eq(s.cyc_sm_warp_idle_group, s.sm_stall_warp_idle, epoch, "cycle_stack",
       "warp_idle_group_eq_stall_warp_idle");
    // Tenant rows partition the machine: the issue bucket is stamped at the
    // same site as the per-tenant issued counter.
    for (std::size_t t = 0; t < s.cyc_tenant_issue.size(); ++t) {
      if (t < s.tenant_issued.size()) {
        eq(s.cyc_tenant_issue[t], s.tenant_issued[t], epoch, "cycle_stack",
           "tenant_issue_row_eq_issued");
      }
    }
  }

  // --- Latency tracer -----------------------------------------------------
  // Every histogram entry must correspond to a delivered packet the
  // component counters saw.  Classes whose finish site coincides with the
  // counter's increment site are exact at every instant; classes whose span
  // closes a hop later (RDF / NSU-write ACKs finish at the NSU, offload
  // spans at the GPU) lag their producer counter and only tie out drained.
  if (s.latency_on) {
    std::uint64_t lat_total = 0;
    for (std::uint64_t c : s.lat_counts) lat_total += c;
    eq(lat_total, s.lat_finished, epoch, "latency", "class_counts_sum");
    le(s.lat_finished + s.lat_cancelled, s.lat_started, epoch, "latency",
       "lifecycle_le_started");
    // Same-instant identities.
    eq(s.lat(PathClass::kGpuReadL2), s.l2_hits - s.rdf_l2_hits, epoch,
       "latency", "gpu_read_l2_eq_demand_hits");
    eq(s.lat(PathClass::kGpuReadDram), s.mem_read_resps, epoch, "latency",
       "gpu_read_dram_eq_fill_resps");
    eq(s.lat(PathClass::kGpuWrite), s.mem_write_completions, epoch,
       "latency", "gpu_write_eq_completions");
    eq(s.lat_cancelled, s.l2_merged, epoch, "latency",
       "cancelled_eq_l2_merged");
    // Lagging-finish flow bounds.
    le(s.lat(PathClass::kRdfCacheHit), s.sm_rdf_l1_hits + s.rdf_l2_hits,
       epoch, "latency", "rdf_cache_hit_le_hits");
    le(s.lat(PathClass::kRdfLocal) + s.lat(PathClass::kRdfRemote),
       s.rdf_completions, epoch, "latency", "rdf_le_completions");
    le(s.lat(PathClass::kNsuWriteLocal) + s.lat(PathClass::kNsuWriteRemote),
       s.nsu_write_completions, epoch, "latency",
       "nsu_write_le_completions");
    le(s.ofld_acks, s.lat(PathClass::kOfldCmd), epoch, "latency",
       "sm_acks_le_ofld_spans");
    le(s.lat(PathClass::kOfldCmd), s.offloads_started, epoch, "latency",
       "ofld_spans_le_started");
    le(s.lat(PathClass::kCredit), s.offloads_started, epoch, "latency",
       "credits_le_spawns");
  }
}

void StatsAudit::check_epoch(std::uint64_t epoch, const AuditSnapshot& s) {
  ++epochs_checked_;
  const std::int64_t e = static_cast<std::int64_t>(epoch);
  if (have_prev_) {
    for (const CumulativeField& f : kCumulative) {
      le(prev_.*(f.field), s.*(f.field), e, "monotone", f.name);
    }
  }
  instant_checks(e, s);
  prev_ = s;
  have_prev_ = true;
}

void StatsAudit::check_final(const AuditSnapshot& s, bool drained) {
  if (have_prev_) {
    for (const CumulativeField& f : kCumulative) {
      le(prev_.*(f.field), s.*(f.field), -1, "monotone", f.name);
    }
  }
  instant_checks(-1, s);
  if (!drained) return;

  // Strict conservation: the system is drained, so every in-flight term is
  // zero and every producer/consumer pair must agree exactly.
  eq(s.net_in_flight, 0, -1, "network", "drained_in_flight");
  eq(s.net_injected, s.gpu_rx_packets + s.hmc_rx_packets, -1, "network",
     "drained_injected_eq_ejected");
  eq(s.l2_read_reqs, s.mem_reads_created(), -1, "l2",
     "drained_retired_eq_created");
  eq(s.mem_read_resps, s.l2_fill_misses(), -1, "gpu", "drained_fills_eq_misses");
  eq(s.mem_read_completions, s.l2_fill_misses(), -1, "vault",
     "drained_read_completions_eq_misses");
  eq(s.nsu_blocks_completed, s.offloads_started, -1, "offload",
     "drained_completed_eq_started");
  eq(s.ofld_acks, s.offloads_started, -1, "offload",
     "drained_acks_eq_started");
  eq(s.acked_block_instrs, s.nsu_finished_block_instrs, -1, "offload",
     "drained_acked_instrs_eq_finished");
  eq(s.vault_reads,
     s.mem_read_completions + s.rdf_completions + s.page_copy_read_completions,
     -1, "vault", "drained_reads_eq_completions");
  eq(s.vault_writes,
     s.mem_write_completions + s.nsu_write_completions +
         s.page_copy_write_completions,
     -1, "vault", "drained_writes_eq_completions");
  // Drained, every migration's copy has landed: exactly one page of vault
  // reads and one page of vault writes per re-home.
  const std::uint64_t lines_per_page = s.page_bytes / s.line_bytes;
  eq(s.page_copy_read_completions, s.pages_migrated * lines_per_page, -1,
     "mem", "drained_copy_reads_eq_migrations");
  eq(s.page_copy_write_completions, s.pages_migrated * lines_per_page, -1,
     "mem", "drained_copy_writes_eq_migrations");
  // Drained, every load's fill has arrived and its consumer issued, so no
  // dependency cycle can still be parked awaiting its serve class.
  if (s.cyc_on) {
    eq(s.cyc_sm_dep_pending, 0, -1, "cycle_stack", "drained_dep_pending");
  }
  eq(s.buf_free_cmd, s.buf_cap_cmd, -1, "buffers", "drained_cmd_credits");
  eq(s.buf_free_read_data, s.buf_cap_read_data, -1, "buffers",
     "drained_read_data_credits");
  eq(s.buf_free_write_addr, s.buf_cap_write_addr, -1, "buffers",
     "drained_write_addr_credits");

  // EnergyCounters must mirror the component stats they were folded from —
  // this is exactly the class of bug that motivated the audit (nsu_lane_ops
  // was silently never folded, zeroing the NSU dynamic energy term).
  eq(s.energy_dram_activates, s.vault_activates, -1, "energy",
     "dram_activates_mirror");
  eq(s.energy_offchip_bytes, s.class_bytes, -1, "energy",
     "offchip_bytes_mirror");
  eq(s.energy_nsu_lane_ops, s.nsu_lane_ops, -1, "energy",
     "nsu_lane_ops_mirror");

  // Drained, every lagging span has closed: per-class histogram counts must
  // equal the delivered-packet counts exactly, and the span lifecycle must
  // balance.  A tracked request that vanished (span never finished or
  // cancelled) or was double-counted shows up here.
  if (s.latency_on) {
    eq(s.lat_started, s.lat_finished + s.lat_cancelled, -1, "latency",
       "drained_lifecycle");
    eq(s.lat(PathClass::kRdfCacheHit), s.sm_rdf_l1_hits + s.rdf_l2_hits, -1,
       "latency", "drained_rdf_cache_hit");
    eq(s.lat(PathClass::kRdfLocal) + s.lat(PathClass::kRdfRemote),
       s.rdf_completions, -1, "latency", "drained_rdf_eq_completions");
    eq(s.lat(PathClass::kNsuWriteLocal) + s.lat(PathClass::kNsuWriteRemote),
       s.nsu_write_completions, -1, "latency",
       "drained_nsu_write_eq_completions");
    eq(s.lat(PathClass::kOfldCmd), s.ofld_acks, -1, "latency",
       "drained_ofld_eq_acks");
    eq(s.lat(PathClass::kCredit), s.offloads_started, -1, "latency",
       "drained_credit_eq_spawns");
    // Every demand L2 read either hit, filled from DRAM, or merged.
    eq(s.lat(PathClass::kGpuReadL2) + s.lat(PathClass::kGpuReadDram) +
           s.lat_cancelled,
       s.l2_read_reqs, -1, "latency", "drained_read_outcomes");
  }
}

std::string StatsAudit::first_violation_message() const {
  if (violations_.empty()) return {};
  return violations_.front().to_string();
}

void StatsAudit::export_stats(StatSet& out) const {
  out.set("audit.checks", static_cast<double>(checks_run_));
  out.set("audit.epochs", static_cast<double>(epochs_checked_));
  out.set("audit.violations",
          static_cast<double>(violations_.size() + suppressed_violations_));
}

}  // namespace sndp
