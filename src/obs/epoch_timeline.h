// Per-epoch metrics timeline: one sample per governor epoch, recording the
// offload controller's trajectory (Fig. 8) plus the system-level rates that
// explain it (IPC, cache hit rates, link utilization, NSU occupancy).
//
// Fast-forward invariance contract
// --------------------------------
// The recorder must produce bit-identical samples with idle fast-forward on
// or off (PR 2's invariant).  Two mechanisms guarantee that:
//
//  * The SM-domain fields (governor state, issued instructions, L1 counters)
//    are sampled inside the governor's epoch-roll observer.  Fast-forward
//    replays skipped epoch boundaries before any SM does work at the wake
//    edge, and skipped edges are SM-workless, so the counters carry the same
//    values the naive stepper would have seen at the real boundary.
//
//  * Cross-domain sources (L2, links, NSUs) are sampled lazily: the owning
//    component polls at the first *consumed* edge of its own clock domain
//    at/after each boundary T_k = tick_time_ps((k+1)*epoch_cycles, sm_khz).
//    Fast-forward only skips workless edges, i.e. edges at which the
//    counters are frozen — so whichever edge does the poll, the recorded
//    value is identical in both modes.  Boundaries never reached by a
//    consumed edge are flushed in finalize() with the end-of-run values,
//    which equal the frozen boundary values for the same reason.
//
// Rates are formed from per-epoch deltas over deterministic denominators
// (boundary timestamps from the exact tick->ps map, NSU edge counts from the
// same integer formula ClockDomain uses), never from wall-clock or
// mode-dependent tick counts.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/cycle_stack.h"

namespace sndp {

class TraceWriter;

// One completed governor epoch.  Cumulative counters are converted to
// per-epoch deltas/rates when the sample is assembled.
struct EpochSample {
  std::uint64_t epoch = 0;  // 0-based epoch index
  Cycle end_cycle = 0;      // SM cycle count at the boundary
  TimePs end_ps = 0;        // boundary instant (deterministic)
  double ratio = 0.0;       // offload ratio after this boundary's update
  double step = 0.0;        // hill-climb step size after this boundary
  int direction = 0;        // hill-climb direction after this boundary
  double epoch_ipc = 0.0;   // offload-block instrs / epoch cycles (the
                            // governor's climb signal)
  std::uint64_t block_instrs = 0;  // offload-block instrs retired this epoch
  double sm_ipc = 0.0;             // SM-issued instrs / (epoch cycles * SMs)
  double l1_hit_rate = 0.0;   // L1 read+RDF-probe hit fraction this epoch
  double l2_hit_rate = 0.0;   // L2 read+RDF-probe hit fraction this epoch
  double gpu_up_util = 0.0;   // mean GPU->HMC link utilization this epoch
  double gpu_down_util = 0.0; // mean HMC->GPU link utilization this epoch
  double cube_util = 0.0;     // mean cube-to-cube link utilization
  double nsu_occupancy = 0.0; // mean busy warp slots / max slots, over NSUs
  double valve_pressure = 0.0;  // end_ps / max_time_ps (1.0 = safety valve)
  std::uint64_t pages_migrated = 0;  // placement migrations this epoch

  // Machine-wide SM cycle-stack deltas this epoch (src/obs/cycle_stack.*,
  // sampled at the boundary after Gpu::sync_cycle_stacks); all zero when
  // profiling is off.  Signed: the sum-preserving pending-dep
  // reclassification can drain a bucket between boundaries.
  std::array<std::int64_t, kNumSmBuckets> sm_stack{};

  bool operator==(const EpochSample&) const = default;
};

class EpochTimeline {
 public:
  EpochTimeline(const SystemConfig& cfg, unsigned num_nsus);

  // SM-domain entry, called from the governor's epoch observer.  `issued`,
  // `l1_hits`, `l1_misses` are cumulative totals over all SMs.  `sm_stack`,
  // when non-null, points at kNumSmBuckets cumulative machine-wide
  // cycle-stack bucket totals (boundary-synced); the sample records the
  // per-epoch delta.
  void on_epoch(std::uint64_t epoch, double epoch_ipc,
                std::uint64_t block_instrs, double ratio, double step,
                int direction, std::uint64_t issued, std::uint64_t l1_hits,
                std::uint64_t l1_misses, const std::uint64_t* sm_stack = nullptr);

  // Lazily-polled cross-domain sources.  `*_due(now)` is the cheap inline
  // guard; the caller gathers its counters only when it returns true.
  bool l2_due(TimePs now) const { return due(l2_filled_, now); }
  void poll_l2(TimePs now, std::uint64_t hits, std::uint64_t misses);

  bool links_due(TimePs now) const { return due(links_filled_, now); }
  void poll_links(TimePs now, std::uint64_t gpu_up_bytes,
                  std::uint64_t gpu_down_bytes, std::uint64_t cube_bytes);

  bool nsu_due(unsigned nsu, TimePs now) const {
    return due(nsu_[nsu].filled, now);
  }
  void poll_nsu(unsigned nsu, TimePs now, std::uint64_t occupancy_accum);

  // Placement migrations (dram domain: polled from Hmc::tick, before its
  // fast-forward early-return — migrations only mutate at consumed dram
  // edges, so the first poll at/after a boundary is mode-invariant).
  bool migrations_due(TimePs now) const { return due(migrations_filled_, now); }
  void poll_migrations(TimePs now, std::uint64_t pages_migrated);

  // Flush every boundary the lazy sources have not reached with the final
  // counter values, then assemble the samples.  Called once after the run.
  void finalize(std::uint64_t l2_hits, std::uint64_t l2_misses,
                std::uint64_t gpu_up_bytes, std::uint64_t gpu_down_bytes,
                std::uint64_t cube_bytes,
                const std::vector<std::uint64_t>& nsu_occupancy_accum,
                std::uint64_t pages_migrated = 0);

  const std::vector<EpochSample>& samples() const { return samples_; }
  std::uint64_t dropped() const { return dropped_; }

  // Emit one Chrome-trace counter ("C") series per metric on row `tid`.
  void emit_trace(TraceWriter& trace, int tid) const;

  void export_stats(StatSet& out) const;

  // Boundary instant for epoch k (deterministic; public for tests).
  TimePs boundary_ps(std::size_t k) const;

 private:
  struct NsuSeries {
    std::vector<std::uint64_t> occ;  // cumulative occupancy at each boundary
    std::size_t filled = 0;
  };

  bool due(std::size_t filled, TimePs now) const {
    return filled < kMaxSamples && boundary_ps(filled) <= now;
  }
  // Number of NSU-domain edges with tick time strictly before `t` (the same
  // integer mapping ClockDomain::first_cycle_at_or_after uses).
  std::uint64_t nsu_edges_before(TimePs t) const;

  static constexpr std::size_t kMaxSamples = 100'000;

  Cycle epoch_cycles_;
  std::uint64_t sm_khz_ = 0;
  std::uint64_t nsu_khz_ = 0;
  unsigned num_sms_ = 0;
  unsigned nsu_max_warps_ = 0;
  unsigned num_gpu_links_ = 0;   // per direction
  unsigned num_cube_links_ = 0;  // unidirectional cube-to-cube links
  double link_bytes_per_ps_ = 0.0;
  TimePs max_time_ps_ = 0;

  // SM-domain series, pushed at each governor roll.  Cross-domain fields of
  // each sample stay zero until finalize().
  std::vector<EpochSample> samples_;
  std::uint64_t dropped_ = 0;
  std::uint64_t prev_issued_ = 0;
  std::uint64_t prev_l1_hits_ = 0;
  std::uint64_t prev_l1_misses_ = 0;
  std::array<std::uint64_t, kNumSmBuckets> prev_sm_stack_{};

  // Lazily-filled cross-domain series: cumulative values at each boundary.
  std::vector<std::uint64_t> l2_hits_at_, l2_misses_at_;
  std::size_t l2_filled_ = 0;
  std::vector<std::uint64_t> up_at_, down_at_, cube_at_;
  std::size_t links_filled_ = 0;
  std::vector<std::uint64_t> migrated_at_;
  std::size_t migrations_filled_ = 0;
  std::vector<NsuSeries> nsu_;
};

// Shared CSV emitter for the timeline — the single definition of the column
// set, used by both bench/epoch_dump and `sndpsim --epoch-csv` so the two
// outputs never drift apart.
void write_epoch_csv(std::FILE* out, const std::vector<EpochSample>& samples);
// Convenience: open `path` ("-" or "" = stdout), write, close.  Returns
// false if the file could not be opened or written.
bool write_epoch_csv(const std::string& path, const std::vector<EpochSample>& samples);

}  // namespace sndp
