// Request-lifecycle latency tracing (ISSUE 5).
//
// Answers "where does a remote-stack RDF round-trip actually spend its
// cycles?" at request granularity: every tracked packet carries a
// `PacketTiming` stamp (src/noc/packet.h) that accumulates per-segment time
// (queueing, link traversal, DRAM service, cache lookup) as it moves through
// the machine, and on completion the total plus the segment split are folded
// into deterministic log2-bucketed histograms keyed by *path class* — the
// request shapes the paper's §4/§6 arguments are about (GPU read served at
// L2 vs from a vault, RDF to the local vs a remote stack, NSU writeback
// local/remote, offload-cmd→ACK, credit round-trip).
//
// Determinism contract: every timestamp used here is an event time the
// simulator already computes (packet creation, TimedChannel ready times,
// link reservation arithmetic, vault completion) — none depend on the
// stepping mode, so all histograms are bit-identical with fast-forward
// on/off and across serial/parallel sweeps (pinned by tests/test_latency.cc).
// Span *sampling* is stratified-deterministic too: the Nth tracked request
// of each packet type (N = SystemConfig::latency_sample) gets a
// full-fidelity per-hop span, bounded by kMaxSpans; overflow is counted in
// spans_dropped() and exported as `sim.latency_spans_dropped` — never a
// silent truncation.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "noc/packet.h"

namespace sndp {

class TraceWriter;

// Path classes: one per request shape whose end-to-end latency the paper's
// placement argument depends on.  "Local" vs "remote" is relative to the
// *target NSU's stack* (every HMC is one hop from the GPU in this topology;
// the placement penalty the paper studies is the NSU-to-vault distance).
enum class PathClass : std::uint8_t {
  kGpuReadL2 = 0,    // SM load, served by an L2 slice hit
  kGpuReadDram,      // SM load, full vault round-trip
  kGpuWrite,         // SM store, retired at the vault (write-through)
  kRdfCacheHit,      // RDF served from GPU L1/L2 instead of DRAM
  kRdfLocal,         // RDF whose vault is in the target NSU's own stack
  kRdfRemote,        // RDF crossing stacks over the memory network
  kNsuWriteLocal,    // NSU store to a vault in its own stack
  kNsuWriteRemote,   // NSU store crossing stacks
  kOfldCmd,          // offload command -> ACK round trip (incl. execution)
  kCredit,           // NSU credit spawn -> GPU buffer-manager return
  kCount,
};
inline constexpr std::size_t kNumPathClasses = static_cast<std::size_t>(PathClass::kCount);
const char* path_class_name(PathClass c);

// Where the time went.  kOther is the remainder (total minus the explicit
// segments, clamped at zero): SM/NSU pipeline residency, buffer waits that
// are not modelled as timed queues, etc.
enum class LatSegment : std::uint8_t {
  kQueue = 0,  // waiting in a timed queue / for a busy link tier
  kLink,       // serialization + propagation on a link, NoC/router/xbar hops
  kDram,       // vault FR-FCFS service (tCL + tBURST worth of the round trip)
  kCache,      // L2 lookup latency on the hit path
  kOther,
  kCount,
};
inline constexpr std::size_t kNumLatSegments = static_cast<std::size_t>(LatSegment::kCount);
const char* lat_segment_name(LatSegment s);

// Log2-bucketed latency histogram over picosecond values.  Bucket 0 holds
// the exact value 0; bucket b (1 <= b < kNumBuckets-1) holds
// [2^(b-1), 2^b - 1]; the last bucket is the overflow bucket for everything
// from 2^(kNumBuckets-2) ps (~70 ms) up.  Count/sum/min/max are exact;
// percentiles interpolate linearly inside a bucket and are clamped to
// [min, max], so a single-valued histogram reports that value exactly.
class Log2Histogram {
 public:
  static constexpr unsigned kNumBuckets = 48;

  static unsigned bucket_of(std::uint64_t v);
  static std::uint64_t bucket_lo(unsigned b);
  static std::uint64_t bucket_hi(unsigned b);  // inclusive; last bucket = UINT64_MAX

  void record(std::uint64_t v);
  void merge(const Log2Histogram& other);  // element-wise; associative

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(unsigned b) const { return buckets_[b]; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  // q in [0, 1].  Returns 0 on an empty histogram.
  double percentile(double q) const;

  bool operator==(const Log2Histogram&) const = default;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

// Aggregated result of a run: per-class total-latency histograms plus
// per-class per-segment time sums (exact), and global span bookkeeping.
struct LatencySummary {
  std::array<Log2Histogram, kNumPathClasses> per_class{};
  // Per-tenant per-class total-latency histograms.  Empty on single-tenant
  // runs (set_num_tenants() sizes it only when more than one tenant is
  // resident), so the classic summary and its equality checks are untouched.
  std::vector<std::array<Log2Histogram, kNumPathClasses>> per_tenant;
  // seg_sum_ps[class][segment]: exact picosecond totals.
  std::array<std::array<std::uint64_t, kNumLatSegments>, kNumPathClasses> seg_sum_ps{};
  std::uint64_t started = 0;    // spans opened (tracked packets created)
  std::uint64_t finished = 0;   // spans closed into a histogram
  std::uint64_t cancelled = 0;  // tracked packets merged/absorbed en route
  std::uint64_t spans_sampled = 0;
  std::uint64_t spans_dropped = 0;  // sampled but span table was full

  std::uint64_t class_count(PathClass c) const {
    return per_class[static_cast<std::size_t>(c)].count();
  }

  // Element-wise fold of another summary (histogram merge + exact integer
  // sums); associative and order-independent, so parallel runs merging
  // per-partition tracer shards reproduce a serial run's summary exactly.
  void merge_from(const LatencySummary& o);

  bool operator==(const LatencySummary&) const = default;
};

// The tracer.  All mutating calls are no-ops on packets whose stamp is not
// active (never start()ed), so instrumentation sites only need the single
// `if (ctx.latency)` guard for the zero-cost-when-disabled path.
class LatencyTracer {
 public:
  // `sample`: every Nth tracked request per packet type gets a full
  // per-hop span (0 disables span capture entirely).  `max_spans` bounds
  // the span table; overflow increments spans_dropped().
  explicit LatencyTracer(unsigned sample, std::size_t max_spans = kDefaultMaxSpans);

  static constexpr std::size_t kDefaultMaxSpans = 4096;

  // Size the per-tenant histogram table (no-op when n <= 1, keeping the
  // single-tenant summary bit-identical to a tracer that never heard of
  // tenants).  Call before the run starts.
  void set_num_tenants(unsigned n) {
    if (n > 1) summary_.per_tenant.resize(n);
  }

  // Open a span: stamps origin/last = now and (deterministically) decides
  // whether this request is sampled.  `node` is the originating network
  // node (HMC id, or the GPU node index) for trace emission.
  void start(Packet& p, TimePs now, unsigned node);

  // The packet was consumed from a timed queue at `now`: time since the
  // last stamp is queueing.  Also records a per-hop span point when sampled.
  void queue_hop(Packet& p, TimePs now, const char* label, unsigned node);

  // Advance the stamp to `now` WITHOUT charging a segment — the gap lands
  // in kOther at finish (SM/NSU execution residency).  Records a span hop.
  void exec_hop(Packet& p, TimePs now, const char* label, unsigned node);

  // A link / NoC / xbar traversal: `wait_ps` queueing for the tier to free
  // up, `fly_ps` serialization + propagation.  Advances the last stamp.
  void add_link(Packet& p, TimePs wait_ps, TimePs fly_ps);

  // L2 lookup latency on the hit path.  Advances the last stamp.
  void add_cache(Packet& p, TimePs d);

  // Vault residency from FR-FCFS enqueue to completion, split into DRAM
  // service (`service_ps`, from the timing constants) and queueing (the
  // rest).  Advances the last stamp to `done_ps` and records a span hop.
  void add_vault(Packet& p, TimePs enqueue_ps, TimePs done_ps, TimePs service_ps, unsigned node);

  // Pre-assign the path class (for request types whose class is known at
  // creation, e.g. RDF local vs remote); finish_stamped() consumes it.
  void set_path(Packet& p, PathClass c);

  // Move the accumulated stamp from a consumed request onto its response.
  void transfer(const Packet& from, Packet& to);

  // Copy a previously parked stamp (e.g. held across NSU warp execution)
  // onto an outgoing packet.
  void adopt(Packet& p, const PacketTiming& parked);

  // Close the span into the `cls` histogram with end time `end_ps`.
  void finish(Packet& p, PathClass cls, TimePs end_ps, unsigned node);
  // Close using the class recorded by set_path().
  void finish_stamped(Packet& p, TimePs end_ps, unsigned node);

  // The tracked packet was absorbed without completing on its own (e.g.
  // L2 MSHR merge): account it so started == finished + cancelled holds.
  void cancel(Packet& p);

  const LatencySummary& summary() const { return summary_; }
  std::uint64_t spans_dropped() const { return summary_.spans_dropped; }

  // Fold another tracer's summary into this one (parallel per-partition
  // shards; span tables are never merged — parallel mode runs shards with
  // sample = 0, so there are no spans to move).
  void merge_from(const LatencyTracer& o) { summary_.merge_from(o.summary_); }

  // Flat stats export: lat.<class>.{count,mean_ps,p50_ps,p95_ps,p99_ps,
  // max_ps}, lat.seg.<segment>.sum_ps, sim.latency_spans{,_dropped}.
  void export_stats(StatSet& out) const;

  // Emit sampled spans as Chrome-trace flow ("s"/"t"/"f") events plus one
  // duration slice per hop-to-hop leg, so Perfetto binds the flow arrows.
  void emit_trace(TraceWriter& trace) const;

 private:
  struct SpanHop {
    const char* label;
    std::uint16_t node;
    TimePs ps;
  };
  struct Span {
    PathClass path = PathClass::kCount;
    TimePs origin_ps = 0;
    TimePs end_ps = 0;
    std::uint16_t origin_node = 0;
    std::uint16_t end_node = 0;
    bool finished = false;
    std::vector<SpanHop> hops;
  };

  void record_hop(const Packet& p, const char* label, unsigned node, TimePs ps);
  Span* span_of(const Packet& p);

  unsigned sample_ = 0;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::array<std::uint64_t, kNumPacketTypes> started_by_type_{};
  std::vector<Span> spans_;
  LatencySummary summary_;
};

// Append the per-class percentile table to a human-readable report line set
// (used by bench/latency_breakdown and sndpsim).
void print_latency_table(const LatencySummary& s, const char* indent);

}  // namespace sndp
