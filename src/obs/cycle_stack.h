// Machine-wide cycle-stack profiler (DESIGN.md "Observability").
//
// Exhaustive top-down cycle accounting: every counted cycle of every SM,
// NSU lane engine, and DRAM vault lands in exactly one bucket, keyed per
// tenant.  The SM buckets refine the three coarse Fig. 8 stall counters
// (ExecBusy / WarpIdle / DepStall) down to the blocking source — which
// memory level served the load a dependency stall waited on, whether an
// exec-busy cycle was a real unit conflict or NDP credit starvation, and
// why warp-idle cycles happened (offload acks vs. barriers vs. draining).
// NSU and vault buckets complete the machine view.
//
// Invariants (enforced by StatsAudit at every epoch boundary when the
// profiler is on):
//   - per component: sum over buckets == the component's counted cycles
//     (SM `active_cycles` + no-warp cycles; NSU `tick_count_`; vault busy +
//     idle cycles),
//   - per group: the SM dep / exec-busy / warp-idle bucket groups sum to
//     the legacy stall counters exactly, so Fig. 8 is derivable,
//   - per tenant: tenant rows + the shared row partition the totals.
//
// Counters live inside the components (no cross-thread aggregation: under
// `--partitions` each component is ticked by exactly one shard thread, so
// the stacks are bit-identical to serial by the same argument as every
// other component counter).  Zero-cost when `SystemConfig::profile` is
// false: no bucket counter is ever touched and no `cyc.*` key is exported.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sndp {

class StatSet;

// ---------------------------------------------------------------------------
// SM buckets.  The first twelve partition `active_cycles` (cycles with at
// least one valid warp); the last two cover the no-warp cycles the legacy
// counters never counted.
// ---------------------------------------------------------------------------
enum class SmBucket : std::uint8_t {
  kIssue,          // a warp issued an instruction this cycle
  kExecBusy,       // blocked on a busy ALU/SFU/LSU or a full downstream queue
  kCreditWait,     // blocked on the NDP pending-packet buffer (credit window)
  kDepPipe,        // dep-wait on an in-flight ALU/SFU producer
  kDepL1,          // dep-wait on an L1 / shared-memory / constant hit
  kDepL2,          // dep-wait on a load served by an L2 slice hit
  kDepDramLocal,   // dep-wait on a load served by the line's home-stack DRAM
  kDepDramRemote,  // dep-wait on a load served by a remote stack's DRAM
  kDepPending,     // dep-wait on a load still in flight; moved to one of the
                   // serve-class buckets above when the fill arrives
  kOfldParked,     // runnable work all parked at OFLD.END awaiting NSU acks
  kBarrier,        // runnable work all parked at CTA barriers
  kWarpDrain,      // valid warps exist but none is runnable (CTA draining)
  kDispatchIdle,   // no valid warp; the SM is waiting for CTA dispatch
  kDrained,        // no valid warp and none ever arrives again (run tail)
  kCount,
};
inline constexpr std::size_t kNumSmBuckets =
    static_cast<std::size_t>(SmBucket::kCount);

// Stat-key / column spelling, e.g. "dep_dram_local".
const char* sm_bucket_name(SmBucket b);

// Legacy Fig. 8 grouping: which coarse counter a bucket refines.
enum class SmBucketGroup : std::uint8_t {
  kIssue,     // == issued_instrs
  kExecBusy,  // == stall_exec_busy
  kDep,       // == stall_dependency
  kWarpIdle,  // == stall_warp_idle
  kNoWarp,    // outside active_cycles
};
SmBucketGroup sm_bucket_group(SmBucket b);

// ---------------------------------------------------------------------------
// NSU buckets: partition of the lane engine's counted cycles (`tick_count_`,
// which includes slept edges — those are idle by construction).
// ---------------------------------------------------------------------------
enum class NsuBucket : std::uint8_t {
  kExec,           // a warp stepped, or the issue port was held by a prior op
  kIngressStarved, // resident warps exist but all are blocked on RDF data /
                   // WTA addresses / write acks
  kQuotaBlocked,   // a buffered command could not spawn: warp quota reached
  kIdle,           // nothing resident and nothing spawnable
  kCount,
};
inline constexpr std::size_t kNumNsuBuckets =
    static_cast<std::size_t>(NsuBucket::kCount);
const char* nsu_bucket_name(NsuBucket b);

// ---------------------------------------------------------------------------
// Vault buckets: partition of every DRAM-clock edge from cycle 0 to the end
// of the run.
// ---------------------------------------------------------------------------
enum class VaultBucket : std::uint8_t {
  kService,    // issued a column access / activate / precharge for demand work
  kPageCopy,   // same, but driven by a migration page-copy request
  kQueueBound, // requests queued but timing constraints blocked every one
  kIdle,       // empty queue
  kCount,
};
inline constexpr std::size_t kNumVaultBuckets =
    static_cast<std::size_t>(VaultBucket::kCount);
const char* vault_bucket_name(VaultBucket b);

// ---------------------------------------------------------------------------
// Per-component bucket counters keyed by tenant row.  Rows 0..T-1 are
// tenants; row T is the shared row for cycles no tenant is responsible for
// (idle, no-warp, drained).  Single-tenant runs still carry the shared row
// so idle time never gets billed to tenant 0.
// ---------------------------------------------------------------------------
template <std::size_t N>
struct BucketStack {
  std::vector<std::array<std::uint64_t, N>> rows;

  void init(unsigned tenants) { rows.assign(tenants + 1, {}); }
  unsigned tenants() const {
    return rows.empty() ? 0 : static_cast<unsigned>(rows.size() - 1);
  }
  unsigned shared_row() const { return tenants(); }

  void add(unsigned row, std::size_t bucket, std::uint64_t n) {
    rows[row][bucket] += n;
  }
  // Sum-preserving reclassification (kDepPending -> serve class).
  void move(unsigned row, std::size_t from, std::size_t to, std::uint64_t n) {
    rows[row][from] -= n;
    rows[row][to] += n;
  }

  std::uint64_t bucket_total(std::size_t b) const {
    std::uint64_t s = 0;
    for (const auto& r : rows) s += r[b];
    return s;
  }
  std::uint64_t row_total(std::size_t r) const {
    std::uint64_t s = 0;
    for (std::size_t b = 0; b < N; ++b) s += rows[r][b];
    return s;
  }
  std::uint64_t total() const {
    std::uint64_t s = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) s += row_total(r);
    return s;
  }
  void accumulate(const BucketStack<N>& other) {
    if (rows.size() < other.rows.size()) rows.resize(other.rows.size());
    for (std::size_t r = 0; r < other.rows.size(); ++r)
      for (std::size_t b = 0; b < N; ++b) rows[r][b] += other.rows[r][b];
  }
};

using SmCycleStack = BucketStack<kNumSmBuckets>;
using NsuCycleStack = BucketStack<kNumNsuBuckets>;
using VaultCycleStack = BucketStack<kNumVaultBuckets>;

// ---------------------------------------------------------------------------
// Machine summary, assembled by Simulator::run from the per-component
// stacks after finalize.  `enabled` is false when SystemConfig::profile was
// off — every field is then zero and nothing is exported.
// ---------------------------------------------------------------------------
struct CycleStackSummary {
  bool enabled = false;
  unsigned tenants = 1;
  SmCycleStack sm;
  NsuCycleStack nsu;
  VaultCycleStack vault;

  std::uint64_t sm_cycles() const { return sm.total(); }
  std::uint64_t nsu_cycles() const { return nsu.total(); }
  std::uint64_t vault_cycles() const { return vault.total(); }
};

// Emit `cyc.sm.<bucket>` / `cyc.nsu.<bucket>` / `cyc.vault.<bucket>` machine
// totals (plus `cyc.<component>.total`), and per-tenant
// `cyc.t<N>.<component>.<bucket>` rows plus the `cyc.shared.*` row when the
// run had more than one tenant.  No-op when `s.enabled` is false.
void export_cycle_stats(const CycleStackSummary& s, StatSet& out);

// Amdahl-style what-if bound: the speedup ceiling if `leaf` cycles of
// `total` went to zero and everything else was unchanged.  Returns +inf
// when leaf == total; 1.0 when leaf == 0 or total == 0.
double whatif_bound(std::uint64_t total, std::uint64_t leaf);

// Render the top-down tree for one component's stack: per-bucket cycles,
// share of the component total, and the what-if bound per leaf, sorted by
// weight.  `indent` prefixes every line.  Used by bench/bottleneck_report
// and the tests.
std::string format_cycle_tree(const CycleStackSummary& s);

}  // namespace sndp
