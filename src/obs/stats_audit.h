// Cross-component flow-conservation audit.
//
// Every headline stat the simulator reports (speedup, link traffic, energy)
// is derived from per-component counters that nothing cross-checks.  This
// audit takes a snapshot of every counter-owning component at each governor
// epoch boundary and at end-of-run, and asserts the books balance:
// coalesced requests issued by SMs reconcile with L1/L2/vault retirements,
// NoC packets injected == ejected + in-flight, NSU lane-ops reconcile with
// offloaded-block instruction counts, offload launches == completions +
// in-flight, buffer credits are conserved, and EnergyCounters mirror the
// component stats they are folded from.
//
// Epoch-boundary checks are restricted to invariants that hold at EVERY
// instant of a run (monotonicity, same-callsite identities, flow
// inequalities like "retired <= issued"), so they are valid no matter where
// in a transaction's lifetime the boundary lands.  The strict conservation
// equalities ("injected == ejected", "launches == completions") only hold
// once the system has drained, so they run in check_final() on completed
// un-aborted runs.
//
// A violation records the first offending epoch (-1 for end-of-run), the
// component, the check name, and both sides of the comparison.  The audit
// itself produces no output while checks pass, which keeps it invisible to
// the fast-forward bit-identity invariant.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/latency.h"

namespace sndp {

// One consistent snapshot of every audited counter.  All fields are
// cumulative totals unless noted instantaneous.  Filled by the Simulator's
// collector (which owns references to all components).
struct AuditSnapshot {
  // SM / L1 side.
  std::uint64_t l1_hits = 0;       // includes RDF-probe hits
  std::uint64_t l1_miss_new = 0;   // includes RDF-probe misses
  std::uint64_t l1_merged = 0;
  std::uint64_t sm_issued = 0;
  std::uint64_t sm_rdf_probes = 0;
  std::uint64_t sm_rdf_l1_hits = 0;
  std::uint64_t offloads_started = 0;
  std::uint64_t inline_blocks = 0;
  std::uint64_t ofld_acks = 0;
  std::uint64_t inline_block_instrs = 0;
  std::uint64_t acked_block_instrs = 0;
  // L2 side (all slices).
  std::uint64_t l2_hits = 0;       // includes RDF-probe hits
  std::uint64_t l2_miss_new = 0;   // includes RDF-probe misses
  std::uint64_t l2_merged = 0;
  std::uint64_t l2_read_reqs = 0;  // kMemRead packets retired at L2
  std::uint64_t rdf_l2_probes = 0;
  std::uint64_t rdf_l2_hits = 0;
  std::uint64_t mem_read_resps = 0;  // kMemReadResp received back at the GPU
  std::uint64_t gpu_rx_packets = 0;  // all packets ejected at the GPU
  // Governor.
  std::uint64_t gov_block_instrs = 0;
  // Network.
  std::uint64_t net_injected = 0;
  std::uint64_t net_in_flight = 0;  // instantaneous
  std::uint64_t hmc_rx_packets = 0;  // packets ejected at any HMC
  std::uint64_t link_bytes = 0;      // sum over Link::bytes_transmitted
  std::uint64_t class_bytes = 0;     // gpu_up + gpu_down + cube byte counters
  // Vaults / DRAM.
  std::uint64_t vault_reads = 0;
  std::uint64_t vault_writes = 0;
  std::uint64_t vault_activates = 0;
  std::uint64_t mem_read_completions = 0;
  std::uint64_t rdf_completions = 0;
  std::uint64_t mem_write_completions = 0;
  std::uint64_t nsu_write_completions = 0;
  std::uint64_t page_copy_read_completions = 0;
  std::uint64_t page_copy_write_completions = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  // NSUs.
  std::uint64_t nsu_blocks_completed = 0;
  std::uint64_t nsu_instrs = 0;
  std::uint64_t nsu_lane_ops = 0;
  std::uint64_t nsu_finished_block_instrs = 0;
  // Buffer manager (instantaneous / capacities).
  std::uint64_t buf_free_cmd = 0;
  std::uint64_t buf_free_read_data = 0;
  std::uint64_t buf_free_write_addr = 0;
  std::uint64_t buf_cap_cmd = 0;
  std::uint64_t buf_cap_read_data = 0;
  std::uint64_t buf_cap_write_addr = 0;
  // EnergyCounters mirrors (meaningful for the final snapshot, after the
  // Simulator folds component stats into the energy counters).
  std::uint64_t energy_dram_activates = 0;
  std::uint64_t energy_offchip_bytes = 0;
  std::uint64_t energy_nsu_lane_ops = 0;
  // Latency tracer (src/obs/latency.*): per-path-class finished-span counts
  // plus the span lifecycle counters.  Only audited when the tracer was
  // enabled for the run (latency_on) — the histograms must reconcile with
  // the delivered-packet counters above, so a lost or double-counted span
  // fails the run like any other conservation bug.
  bool latency_on = false;
  std::array<std::uint64_t, kNumPathClasses> lat_counts{};
  std::uint64_t lat_started = 0;
  std::uint64_t lat_finished = 0;
  std::uint64_t lat_cancelled = 0;
  // Placement policy (mem/placement.*): migration counters are paired in
  // the same note_remote_access call, so they must stay in lock-step, and
  // every migration must show up in the fabric as page_bytes/line_bytes
  // vault reads at the old home plus the same count of writes at the new
  // home (the Hmc page-copy flow) — a re-home is never free.
  std::uint64_t pages_migrated = 0;
  std::uint64_t migration_bytes = 0;
  // Per-tenant splits (empty on single-tenant runs).  Each vector is keyed
  // by tenant id and must sum to the matching fabric-wide total — a packet
  // mis-stamped or double-counted under one tenant breaks the sum even when
  // the aggregate books still balance.
  std::vector<std::uint64_t> tenant_issued;     // per-tenant SM instructions
  std::vector<std::uint64_t> tenant_l2_reads;   // per-tenant L2 read outcomes
  std::vector<std::uint64_t> tenant_gov_instrs; // per-governor block instrs
  // Cycle-stack profiler (src/obs/cycle_stack.*), filled when
  // SystemConfig::profile is on.  Exhaustiveness: each component's bucket
  // sum must equal its counted cycles at every instant (every counted cycle
  // lands in exactly one bucket; reclassifications are sum-preserving).
  // The machine-wide SM bucket groups must reproduce the legacy Fig. 8
  // stall counters exactly, and the per-tenant issue rows must partition
  // the per-tenant issued-instruction counters.
  bool cyc_on = false;
  std::vector<std::uint64_t> cyc_sm_sum, cyc_sm_counted;        // per SM
  std::vector<std::uint64_t> cyc_nsu_sum, cyc_nsu_counted;      // per NSU
  std::vector<std::uint64_t> cyc_vault_sum, cyc_vault_counted;  // per vault
  std::uint64_t cyc_sm_issue = 0;
  std::uint64_t cyc_sm_exec_group = 0;       // exec_busy + credit_wait
  std::uint64_t cyc_sm_dep_group = 0;        // all dep_* buckets
  std::uint64_t cyc_sm_warp_idle_group = 0;  // ofld_parked + barrier + warp_drain
  std::uint64_t cyc_sm_dep_pending = 0;      // unresolved retroactive dep cycles
  std::uint64_t sm_stall_dependency = 0;
  std::uint64_t sm_stall_exec_busy = 0;
  std::uint64_t sm_stall_warp_idle = 0;
  std::vector<std::uint64_t> cyc_tenant_issue;  // per-tenant issue-bucket rows
  // Geometry.
  unsigned line_bytes = 128;
  unsigned warp_width = 32;
  std::uint64_t page_bytes = 4096;

  std::uint64_t lat(PathClass c) const {
    return lat_counts[static_cast<std::size_t>(c)];
  }

  // kMemRead packets the SMs created: every L1 new miss allocates one,
  // except RDF-probe misses (the probe packet already exists).
  std::uint64_t mem_reads_created() const {
    return l1_miss_new - (sm_rdf_probes - sm_rdf_l1_hits);
  }

  // L2 new misses that fetch a line from a vault: RDF probe misses also
  // count as L2 misses but the RDF packet travels on to memory itself, so
  // no kMemRead / kMemReadResp pair is created for them.
  std::uint64_t l2_fill_misses() const {
    return l2_miss_new - (rdf_l2_probes - rdf_l2_hits);
  }
};

struct AuditViolation {
  std::int64_t epoch = -1;  // governor epoch index, or -1 for end-of-run
  std::string component;
  std::string check;
  double lhs = 0.0;
  double rhs = 0.0;
  double delta() const { return lhs - rhs; }
  std::string to_string() const;
};

class StatsAudit {
 public:
  // Run the every-instant invariants against the snapshot taken at epoch
  // boundary `epoch` (also checks counter monotonicity vs. the previous
  // snapshot).
  void check_epoch(std::uint64_t epoch, const AuditSnapshot& s);

  // Run the end-of-run checks.  `drained` means the run completed without
  // abort, so strict conservation equalities must hold; an aborted run only
  // gets the every-instant invariants.
  void check_final(const AuditSnapshot& s, bool drained);

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  std::string first_violation_message() const;

  void export_stats(StatSet& out) const;

 private:
  void instant_checks(std::int64_t epoch, const AuditSnapshot& s);
  void expect(bool cond, std::int64_t epoch, const char* component,
              const char* check, double lhs, double rhs);
  void eq(std::uint64_t lhs, std::uint64_t rhs, std::int64_t epoch,
          const char* component, const char* check);
  void le(std::uint64_t lhs, std::uint64_t rhs, std::int64_t epoch,
          const char* component, const char* check);

  static constexpr std::size_t kMaxViolations = 64;

  std::uint64_t checks_run_ = 0;
  std::uint64_t epochs_checked_ = 0;
  std::vector<AuditViolation> violations_;
  std::uint64_t suppressed_violations_ = 0;
  AuditSnapshot prev_;
  bool have_prev_ = false;
};

}  // namespace sndp
