#include "obs/epoch_timeline.h"

#include <algorithm>

#include "common/units.h"
#include "sim/trace.h"

namespace sndp {

EpochTimeline::EpochTimeline(const SystemConfig& cfg, unsigned num_nsus)
    : epoch_cycles_(cfg.governor.epoch_cycles),
      sm_khz_(cfg.clocks.sm_khz),
      nsu_khz_(cfg.clocks.nsu_khz),
      num_sms_(cfg.num_sms),
      nsu_max_warps_(cfg.nsu.max_warps),
      num_gpu_links_(cfg.num_hmcs),
      link_bytes_per_ps_(cfg.link.gb_per_s / 1000.0),
      max_time_ps_(cfg.max_time_ps) {
  // Count the unidirectional cube links that actually exist: both endpoints
  // of a dimension edge must be < num_hmcs (incomplete hypercube for
  // non-power-of-two counts; reduces to num_hmcs * log2(num_hmcs) for
  // complete cubes).
  unsigned dims = 0;
  while ((1u << dims) < cfg.num_hmcs) ++dims;
  for (unsigned i = 0; i < cfg.num_hmcs; ++i) {
    for (unsigned d = 0; d < dims; ++d) {
      if ((i ^ (1u << d)) < cfg.num_hmcs) ++num_cube_links_;
    }
  }
  nsu_.resize(num_nsus);
}

TimePs EpochTimeline::boundary_ps(std::size_t k) const {
  return tick_time_ps(static_cast<Cycle>(k + 1) * epoch_cycles_, sm_khz_);
}

std::uint64_t EpochTimeline::nsu_edges_before(TimePs t) const {
  // Same mapping as ClockDomain::first_cycle_at_or_after: the count of edges
  // n with tick_time_ps(n, nsu_khz_) < t is ceil(t * khz / 1e9).
  const unsigned __int128 num =
      static_cast<unsigned __int128>(t) * nsu_khz_ + 999'999'999ull;
  return static_cast<std::uint64_t>(num / 1'000'000'000ull);
}

void EpochTimeline::on_epoch(std::uint64_t epoch, double epoch_ipc,
                             std::uint64_t block_instrs, double ratio,
                             double step, int direction, std::uint64_t issued,
                             std::uint64_t l1_hits, std::uint64_t l1_misses,
                             const std::uint64_t* sm_stack) {
  if (samples_.size() >= kMaxSamples) {
    ++dropped_;
    return;
  }
  EpochSample s;
  s.epoch = epoch;
  s.end_cycle = static_cast<Cycle>(epoch + 1) * epoch_cycles_;
  s.end_ps = boundary_ps(epoch);
  s.ratio = ratio;
  s.step = step;
  s.direction = direction;
  s.epoch_ipc = epoch_ipc;
  s.block_instrs = block_instrs;
  const double denom =
      static_cast<double>(epoch_cycles_) * static_cast<double>(num_sms_);
  s.sm_ipc = static_cast<double>(issued - prev_issued_) / denom;
  const std::uint64_t dh = l1_hits - prev_l1_hits_;
  const std::uint64_t dm = l1_misses - prev_l1_misses_;
  s.l1_hit_rate =
      (dh + dm) == 0 ? 0.0 : static_cast<double>(dh) / static_cast<double>(dh + dm);
  s.valve_pressure = max_time_ps_ == 0
                         ? 0.0
                         : static_cast<double>(s.end_ps) /
                               static_cast<double>(max_time_ps_);
  if (sm_stack != nullptr) {
    for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
      s.sm_stack[b] = static_cast<std::int64_t>(sm_stack[b]) -
                      static_cast<std::int64_t>(prev_sm_stack_[b]);
      prev_sm_stack_[b] = sm_stack[b];
    }
  }
  samples_.push_back(s);
  prev_issued_ = issued;
  prev_l1_hits_ = l1_hits;
  prev_l1_misses_ = l1_misses;
}

void EpochTimeline::poll_l2(TimePs now, std::uint64_t hits,
                            std::uint64_t misses) {
  while (due(l2_filled_, now)) {
    l2_hits_at_.push_back(hits);
    l2_misses_at_.push_back(misses);
    ++l2_filled_;
  }
}

void EpochTimeline::poll_links(TimePs now, std::uint64_t gpu_up_bytes,
                               std::uint64_t gpu_down_bytes,
                               std::uint64_t cube_bytes) {
  while (due(links_filled_, now)) {
    up_at_.push_back(gpu_up_bytes);
    down_at_.push_back(gpu_down_bytes);
    cube_at_.push_back(cube_bytes);
    ++links_filled_;
  }
}

void EpochTimeline::poll_nsu(unsigned nsu, TimePs now,
                             std::uint64_t occupancy_accum) {
  NsuSeries& s = nsu_[nsu];
  while (due(s.filled, now)) {
    s.occ.push_back(occupancy_accum);
    ++s.filled;
  }
}

void EpochTimeline::poll_migrations(TimePs now, std::uint64_t pages_migrated) {
  while (due(migrations_filled_, now)) {
    migrated_at_.push_back(pages_migrated);
    ++migrations_filled_;
  }
}

void EpochTimeline::finalize(std::uint64_t l2_hits, std::uint64_t l2_misses,
                             std::uint64_t gpu_up_bytes,
                             std::uint64_t gpu_down_bytes,
                             std::uint64_t cube_bytes,
                             const std::vector<std::uint64_t>& nsu_occ,
                             std::uint64_t pages_migrated) {
  const std::size_t n = samples_.size();
  // Flush lazy series out to the number of rolled epochs.  Any boundary a
  // source never reached with a consumed edge had frozen counters from
  // before the boundary to end-of-run, so the final value IS the boundary
  // value (see header contract).
  while (l2_filled_ < n) {
    l2_hits_at_.push_back(l2_hits);
    l2_misses_at_.push_back(l2_misses);
    ++l2_filled_;
  }
  while (links_filled_ < n) {
    up_at_.push_back(gpu_up_bytes);
    down_at_.push_back(gpu_down_bytes);
    cube_at_.push_back(cube_bytes);
    ++links_filled_;
  }
  while (migrations_filled_ < n) {
    migrated_at_.push_back(pages_migrated);
    ++migrations_filled_;
  }
  for (std::size_t i = 0; i < nsu_.size(); ++i) {
    NsuSeries& s = nsu_[i];
    const std::uint64_t final_occ = i < nsu_occ.size() ? nsu_occ[i] : 0;
    while (s.filled < n) {
      s.occ.push_back(final_occ);
      ++s.filled;
    }
  }

  std::uint64_t prev_l2h = 0, prev_l2m = 0;
  std::uint64_t prev_up = 0, prev_down = 0, prev_cube = 0;
  std::uint64_t prev_migrated = 0;
  std::vector<std::uint64_t> prev_occ(nsu_.size(), 0);
  TimePs prev_ps = 0;
  std::uint64_t prev_nsu_edges = 0;
  for (std::size_t k = 0; k < n; ++k) {
    EpochSample& s = samples_[k];
    const std::uint64_t dh = l2_hits_at_[k] - prev_l2h;
    const std::uint64_t dm = l2_misses_at_[k] - prev_l2m;
    s.l2_hit_rate = (dh + dm) == 0
                        ? 0.0
                        : static_cast<double>(dh) / static_cast<double>(dh + dm);
    const double dur_ps = static_cast<double>(s.end_ps - prev_ps);
    if (dur_ps > 0.0) {
      const double per_link = dur_ps * link_bytes_per_ps_;
      s.gpu_up_util = static_cast<double>(up_at_[k] - prev_up) /
                      (per_link * num_gpu_links_);
      s.gpu_down_util = static_cast<double>(down_at_[k] - prev_down) /
                        (per_link * num_gpu_links_);
      s.cube_util = num_cube_links_ == 0
                        ? 0.0
                        : static_cast<double>(cube_at_[k] - prev_cube) /
                              (per_link * num_cube_links_);
    }
    const std::uint64_t nsu_edges = nsu_edges_before(s.end_ps);
    const std::uint64_t d_edges = nsu_edges - prev_nsu_edges;
    if (d_edges > 0 && !nsu_.empty() && nsu_max_warps_ > 0) {
      std::uint64_t occ_sum = 0;
      for (std::size_t i = 0; i < nsu_.size(); ++i) {
        occ_sum += nsu_[i].occ[k] - prev_occ[i];
        prev_occ[i] = nsu_[i].occ[k];
      }
      s.nsu_occupancy =
          static_cast<double>(occ_sum) /
          (static_cast<double>(d_edges) * nsu_max_warps_ * nsu_.size());
    }
    s.pages_migrated = migrated_at_[k] - prev_migrated;
    prev_migrated = migrated_at_[k];
    prev_l2h = l2_hits_at_[k];
    prev_l2m = l2_misses_at_[k];
    prev_up = up_at_[k];
    prev_down = down_at_[k];
    prev_cube = cube_at_[k];
    prev_ps = s.end_ps;
    prev_nsu_edges = nsu_edges;
  }
}

void EpochTimeline::emit_trace(TraceWriter& trace, int tid) const {
  for (const EpochSample& s : samples_) {
    trace.counter("offload_ratio", tid, s.end_ps, s.ratio);
    trace.counter("epoch_ipc", tid, s.end_ps, s.epoch_ipc);
    trace.counter("sm_ipc", tid, s.end_ps, s.sm_ipc);
    trace.counter("l1_hit_rate", tid, s.end_ps, s.l1_hit_rate);
    trace.counter("l2_hit_rate", tid, s.end_ps, s.l2_hit_rate);
    trace.counter("gpu_up_util", tid, s.end_ps, s.gpu_up_util);
    trace.counter("gpu_down_util", tid, s.end_ps, s.gpu_down_util);
    trace.counter("cube_util", tid, s.end_ps, s.cube_util);
    trace.counter("nsu_occupancy", tid, s.end_ps, s.nsu_occupancy);
    trace.counter("pages_migrated", tid, s.end_ps,
                  static_cast<double>(s.pages_migrated));
  }
  // Cycle-stack counter tracks: one series per SM bucket, as cumulative
  // cycle totals (Perfetto renders absolute counter values best).  Skipped
  // entirely when profiling was off (all-zero deltas).
  bool any_stack = false;
  for (const EpochSample& s : samples_) {
    for (const std::int64_t v : s.sm_stack) any_stack = any_stack || v != 0;
  }
  if (any_stack) {
    std::array<std::int64_t, kNumSmBuckets> cum{};
    for (const EpochSample& s : samples_) {
      for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
        cum[b] += s.sm_stack[b];
        trace.counter(std::string("cyc_") +
                          sm_bucket_name(static_cast<SmBucket>(b)),
                      tid, s.end_ps, static_cast<double>(cum[b]));
      }
    }
  }
}

void EpochTimeline::export_stats(StatSet& out) const {
  out.set("timeline.epochs", static_cast<double>(samples_.size()));
  out.set("timeline.dropped", static_cast<double>(dropped_));
  if (!samples_.empty()) {
    out.set("timeline.final_ratio", samples_.back().ratio);
    double peak_up = 0.0, peak_occ = 0.0;
    for (const EpochSample& s : samples_) {
      peak_up = std::max(peak_up, s.gpu_up_util);
      peak_occ = std::max(peak_occ, s.nsu_occupancy);
    }
    out.set("timeline.peak_gpu_up_util", peak_up);
    out.set("timeline.peak_nsu_occupancy", peak_occ);
  }
}

void write_epoch_csv(std::FILE* out, const std::vector<EpochSample>& samples) {
  std::fprintf(out,
               "epoch,end_cycle,end_ps,ratio,step,direction,epoch_ipc,block_instrs,"
               "sm_ipc,l1_hit_rate,l2_hit_rate,gpu_up_util,gpu_down_util,cube_util,"
               "nsu_occupancy,valve_pressure,pages_migrated");
  for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
    std::fprintf(out, ",cyc_%s", sm_bucket_name(static_cast<SmBucket>(b)));
  }
  std::fprintf(out, "\n");
  for (const EpochSample& s : samples) {
    std::fprintf(out,
                 "%llu,%llu,%llu,%.6f,%.6f,%d,%.6f,%llu,%.6f,%.6f,%.6f,%.6f,%.6f,"
                 "%.6f,%.6f,%.6f,%llu",
                 static_cast<unsigned long long>(s.epoch),
                 static_cast<unsigned long long>(s.end_cycle),
                 static_cast<unsigned long long>(s.end_ps), s.ratio, s.step, s.direction,
                 s.epoch_ipc, static_cast<unsigned long long>(s.block_instrs), s.sm_ipc,
                 s.l1_hit_rate, s.l2_hit_rate, s.gpu_up_util, s.gpu_down_util, s.cube_util,
                 s.nsu_occupancy, s.valve_pressure,
                 static_cast<unsigned long long>(s.pages_migrated));
    for (const std::int64_t v : s.sm_stack) {
      std::fprintf(out, ",%lld", static_cast<long long>(v));
    }
    std::fprintf(out, "\n");
  }
}

bool write_epoch_csv(const std::string& path, const std::vector<EpochSample>& samples) {
  if (path.empty() || path == "-") {
    write_epoch_csv(stdout, samples);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  write_epoch_csv(f, samples);
  const bool ok = std::ferror(f) == 0;
  return std::fclose(f) == 0 && ok;
}

}  // namespace sndp
