#include "obs/cycle_stack.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/stats.h"

namespace sndp {

const char* sm_bucket_name(SmBucket b) {
  switch (b) {
    case SmBucket::kIssue: return "issue";
    case SmBucket::kExecBusy: return "exec_busy";
    case SmBucket::kCreditWait: return "credit_wait";
    case SmBucket::kDepPipe: return "dep_pipe";
    case SmBucket::kDepL1: return "dep_l1";
    case SmBucket::kDepL2: return "dep_l2";
    case SmBucket::kDepDramLocal: return "dep_dram_local";
    case SmBucket::kDepDramRemote: return "dep_dram_remote";
    case SmBucket::kDepPending: return "dep_pending";
    case SmBucket::kOfldParked: return "ofld_parked";
    case SmBucket::kBarrier: return "barrier";
    case SmBucket::kWarpDrain: return "warp_drain";
    case SmBucket::kDispatchIdle: return "dispatch_idle";
    case SmBucket::kDrained: return "drained";
    case SmBucket::kCount: break;
  }
  return "?";
}

SmBucketGroup sm_bucket_group(SmBucket b) {
  switch (b) {
    case SmBucket::kIssue:
      return SmBucketGroup::kIssue;
    case SmBucket::kExecBusy:
    case SmBucket::kCreditWait:
      return SmBucketGroup::kExecBusy;
    case SmBucket::kDepPipe:
    case SmBucket::kDepL1:
    case SmBucket::kDepL2:
    case SmBucket::kDepDramLocal:
    case SmBucket::kDepDramRemote:
    case SmBucket::kDepPending:
      return SmBucketGroup::kDep;
    case SmBucket::kOfldParked:
    case SmBucket::kBarrier:
    case SmBucket::kWarpDrain:
      return SmBucketGroup::kWarpIdle;
    case SmBucket::kDispatchIdle:
    case SmBucket::kDrained:
    case SmBucket::kCount:
      break;
  }
  return SmBucketGroup::kNoWarp;
}

const char* nsu_bucket_name(NsuBucket b) {
  switch (b) {
    case NsuBucket::kExec: return "exec";
    case NsuBucket::kIngressStarved: return "ingress_starved";
    case NsuBucket::kQuotaBlocked: return "quota_blocked";
    case NsuBucket::kIdle: return "idle";
    case NsuBucket::kCount: break;
  }
  return "?";
}

const char* vault_bucket_name(VaultBucket b) {
  switch (b) {
    case VaultBucket::kService: return "service";
    case VaultBucket::kPageCopy: return "page_copy";
    case VaultBucket::kQueueBound: return "queue_bound";
    case VaultBucket::kIdle: return "idle";
    case VaultBucket::kCount: break;
  }
  return "?";
}

namespace {

template <std::size_t N>
void export_stack(const BucketStack<N>& stack, const char* component,
                  const char* (*name)(std::uint8_t), bool per_tenant,
                  StatSet& out) {
  const std::string base = std::string("cyc.") + component + ".";
  for (std::size_t b = 0; b < N; ++b) {
    out.set(base + name(static_cast<std::uint8_t>(b)),
            static_cast<double>(stack.bucket_total(b)));
  }
  out.set(base + "total", static_cast<double>(stack.total()));
  if (!per_tenant) return;
  for (std::size_t r = 0; r < stack.rows.size(); ++r) {
    const std::string row =
        r == stack.shared_row() ? std::string("cyc.shared.") + component + "."
                                : "cyc.t" + std::to_string(r) + "." +
                                      component + ".";
    for (std::size_t b = 0; b < N; ++b) {
      out.set(row + name(static_cast<std::uint8_t>(b)),
              static_cast<double>(stack.rows[r][b]));
    }
  }
}

const char* sm_name_u8(std::uint8_t b) {
  return sm_bucket_name(static_cast<SmBucket>(b));
}
const char* nsu_name_u8(std::uint8_t b) {
  return nsu_bucket_name(static_cast<NsuBucket>(b));
}
const char* vault_name_u8(std::uint8_t b) {
  return vault_bucket_name(static_cast<VaultBucket>(b));
}

const char* sm_group_label(SmBucketGroup g) {
  switch (g) {
    case SmBucketGroup::kIssue: return "issue";
    case SmBucketGroup::kExecBusy: return "exec_busy";
    case SmBucketGroup::kDep: return "dep_wait";
    case SmBucketGroup::kWarpIdle: return "warp_idle";
    case SmBucketGroup::kNoWarp: return "no_warp";
  }
  return "?";
}

void append_line(std::string& out, int depth, const char* label,
                 std::uint64_t cycles, std::uint64_t total) {
  char buf[160];
  const double share =
      total ? 100.0 * static_cast<double>(cycles) / static_cast<double>(total)
            : 0.0;
  const double bound = whatif_bound(total, cycles);
  if (cycles == total && total != 0) {
    std::snprintf(buf, sizeof(buf), "%*s%-16s %14llu  %5.1f%%  ->0 => inf\n",
                  depth * 2, "", label,
                  static_cast<unsigned long long>(cycles), share);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%*s%-16s %14llu  %5.1f%%  ->0 => <=%.2fx\n", depth * 2, "",
                  label, static_cast<unsigned long long>(cycles), share,
                  bound);
  }
  out += buf;
}

struct Leaf {
  const char* label;
  std::uint64_t cycles;
};

void append_leaves(std::string& out, int depth, std::vector<Leaf> leaves,
                   std::uint64_t total) {
  std::stable_sort(leaves.begin(), leaves.end(),
                   [](const Leaf& a, const Leaf& b) { return a.cycles > b.cycles; });
  for (const Leaf& l : leaves) append_line(out, depth, l.label, l.cycles, total);
}

}  // namespace

void export_cycle_stats(const CycleStackSummary& s, StatSet& out) {
  if (!s.enabled) return;
  const bool per_tenant = s.tenants > 1;
  export_stack(s.sm, "sm", sm_name_u8, per_tenant, out);
  export_stack(s.nsu, "nsu", nsu_name_u8, per_tenant, out);
  export_stack(s.vault, "vault", vault_name_u8, per_tenant, out);
}

double whatif_bound(std::uint64_t total, std::uint64_t leaf) {
  if (total == 0 || leaf == 0) return 1.0;
  if (leaf >= total) return std::numeric_limits<double>::infinity();
  return static_cast<double>(total) / static_cast<double>(total - leaf);
}

std::string format_cycle_tree(const CycleStackSummary& s) {
  std::string out;
  if (!s.enabled) return "cycle-stack profiler disabled\n";
  char buf[160];

  // --- SM: grouped by the legacy Fig. 8 counter each bucket refines. ---
  const std::uint64_t sm_total = s.sm.total();
  std::snprintf(buf, sizeof(buf), "sm  (%llu cycles over all SMs)\n",
                static_cast<unsigned long long>(sm_total));
  out += buf;
  static constexpr SmBucketGroup kGroups[] = {
      SmBucketGroup::kIssue, SmBucketGroup::kExecBusy, SmBucketGroup::kDep,
      SmBucketGroup::kWarpIdle, SmBucketGroup::kNoWarp};
  for (SmBucketGroup g : kGroups) {
    std::uint64_t group_cycles = 0;
    std::vector<Leaf> leaves;
    for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
      const auto bucket = static_cast<SmBucket>(b);
      if (sm_bucket_group(bucket) != g) continue;
      const std::uint64_t c = s.sm.bucket_total(b);
      group_cycles += c;
      leaves.push_back({sm_bucket_name(bucket), c});
    }
    append_line(out, 1, sm_group_label(g), group_cycles, sm_total);
    if (leaves.size() > 1) append_leaves(out, 2, std::move(leaves), sm_total);
  }

  // --- NSU and vaults: flat. ---
  const std::uint64_t nsu_total = s.nsu.total();
  std::snprintf(buf, sizeof(buf), "nsu  (%llu cycles over all NSUs)\n",
                static_cast<unsigned long long>(nsu_total));
  out += buf;
  {
    std::vector<Leaf> leaves;
    for (std::size_t b = 0; b < kNumNsuBuckets; ++b)
      leaves.push_back({nsu_bucket_name(static_cast<NsuBucket>(b)),
                        s.nsu.bucket_total(b)});
    append_leaves(out, 1, std::move(leaves), nsu_total);
  }

  const std::uint64_t vault_total = s.vault.total();
  std::snprintf(buf, sizeof(buf), "vault  (%llu cycles over all vaults)\n",
                static_cast<unsigned long long>(vault_total));
  out += buf;
  {
    std::vector<Leaf> leaves;
    for (std::size_t b = 0; b < kNumVaultBuckets; ++b)
      leaves.push_back({vault_bucket_name(static_cast<VaultBucket>(b)),
                        s.vault.bucket_total(b)});
    append_leaves(out, 1, std::move(leaves), vault_total);
  }
  return out;
}

}  // namespace sndp
