#include "noc/network.h"

#include <bit>
#include <stdexcept>

#include "obs/epoch_timeline.h"
#include "obs/latency.h"
#include "sim/trace.h"

namespace sndp {
namespace {
std::uint64_t pair_key(unsigned a, unsigned b) {
  const unsigned lo = a < b ? a : b;
  const unsigned hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
}  // namespace

Network::Network(const SystemConfig& cfg)
    : num_hmcs_(cfg.num_hmcs),
      link_cfg_(cfg.link),
      router_latency_ps_(cfg.link.router_latency_cycles *
                         tick_time_ps(1, cfg.clocks.dram_khz)) {
  rx_.resize(num_hmcs_ + 1);  // +1: the GPU node
  auto make_pair = [&] {
    LinkPair p;
    p.up = std::make_unique<Link>(link_cfg_.gb_per_s, link_cfg_.propagation_ps);
    p.down = std::make_unique<Link>(link_cfg_.gb_per_s, link_cfg_.propagation_ps);
    return p;
  };
  gpu_links_.reserve(num_hmcs_);
  for (unsigned h = 0; h < num_hmcs_; ++h) gpu_links_.push_back(make_pair());
  // Hypercube edges: (i, i ^ (1 << d)) for each dimension d, created once.
  // Non-power-of-two counts keep only the edges whose far endpoint exists
  // (the incomplete hypercube).
  const unsigned dims = hypercube_dimensions(num_hmcs_);
  for (unsigned i = 0; i < num_hmcs_; ++i) {
    for (unsigned d = 0; d < dims; ++d) {
      const unsigned j = i ^ (1u << d);
      if (i < j && j < num_hmcs_) cube_links_.emplace(pair_key(i, j), make_pair());
    }
  }
  pow2_nodes_ = std::has_single_bit(num_hmcs_);
}

Link& Network::gpu_link(unsigned hmc, bool toward_hmc) {
  LinkPair& p = gpu_links_.at(hmc);
  return toward_hmc ? *p.up : *p.down;
}

Link& Network::cube_link(unsigned from, unsigned to) {
  auto it = cube_links_.find(pair_key(from, to));
  if (it == cube_links_.end()) throw std::logic_error("Network: no such cube link");
  return from < to ? *it->second.up : *it->second.down;
}

TimePs Network::send(Packet pkt, TimePs now) {
  const unsigned gpu = gpu_node();
  if (pkt.src_node == pkt.dst_node) throw std::logic_error("Network: src == dst");
  if (pkt.src_node > gpu || pkt.dst_node > gpu) throw std::logic_error("Network: bad node id");

  // Epoch-timeline sampling: the byte counters only change inside send(),
  // so the first injection at/after a boundary sees exactly the counters as
  // of that boundary (in either stepping mode).
  if (timeline_ != nullptr && timeline_->links_due(now)) {
    timeline_->poll_links(now, gpu_up_bytes_, gpu_down_bytes_, cube_bytes_);
  }

  ++packets_injected_;
  bytes_by_type_[pkt.type] += pkt.size_bytes;
  const LinkTier ctrl = is_urgent_packet(pkt.type)    ? LinkTier::kUrgent
                        : is_control_packet(pkt.type) ? LinkTier::kControl
                                                      : LinkTier::kBulk;

  // Latency accounting: any wait since the packet's last stamp is queueing
  // at the injection port; each link leg splits into tier wait (queue) and
  // serialization + propagation (link); router pipeline stages count as
  // link time.  The stamp ends up at the final arrival time.
  const bool lat = latency_ != nullptr && pkt.lt.active;
  if (lat) latency_->queue_hop(pkt, now, "inject", pkt.src_node);
  TimePs wait = 0;
  TimePs* wp = lat ? &wait : nullptr;

  TimePs t = now;
  if (pkt.src_node == gpu) {
    // GPU -> HMC: one dedicated link; no network hops (the destination HMC
    // is always directly attached).
    const TimePs t0 = t;
    t = gpu_link(pkt.dst_node, /*toward_hmc=*/true).transmit(t, pkt.size_bytes, ctrl, wp);
    gpu_up_bytes_ += pkt.size_bytes;
    if (lat) latency_->add_link(pkt, wait, t - t0 - wait);
  } else if (pkt.dst_node == gpu) {
    const TimePs t0 = t;
    t = gpu_link(pkt.src_node, /*toward_hmc=*/false).transmit(t, pkt.size_bytes, ctrl, wp);
    gpu_down_bytes_ += pkt.size_bytes;
    if (lat) latency_->add_link(pkt, wait, t - t0 - wait);
  } else {
    // HMC -> HMC over the hypercube, dimension-order.  Fixed-size route
    // buffer: this runs once per packet, so no heap traffic here.
    unsigned path[kMaxRouteNodes];
    // Power-of-two counts keep the historic lowest-bit-first route (bit-
    // identical link traffic); others need the incomplete-cube route whose
    // intermediates all exist.
    const unsigned hops =
        pow2_nodes_ ? hypercube_route(pkt.src_node, pkt.dst_node, path)
                    : incomplete_hypercube_route(pkt.src_node, pkt.dst_node, num_hmcs_, path);
    for (unsigned i = 0; i + 1 < hops; ++i) {
      TimePs router = 0;
      if (i > 0) {
        router = router_latency_ps_;  // per-hop router pipeline
        t += router;
      }
      const TimePs t0 = t;
      t = cube_link(path[i], path[i + 1]).transmit(t, pkt.size_bytes, ctrl, wp);
      cube_bytes_ += pkt.size_bytes;
      if (lat) latency_->add_link(pkt, wait, router + t - t0 - wait);
    }
  }
  if (lat) latency_->queue_hop(pkt, t, "eject", pkt.dst_node);
  const unsigned dst = pkt.dst_node;
  if (trace_ != nullptr) {
    // Row id: source node (GPU = num_hmcs).
    trace_->complete(packet_type_name(pkt.type), "packet",
                     static_cast<int>(pkt.src_node), now, t - now);
  }
  rx_[dst].push(std::move(pkt), t);
  return t;
}

bool Network::idle() const {
  for (const auto& ch : rx_) {
    if (!ch.empty()) return false;
  }
  return true;
}

std::uint64_t Network::in_flight_packets() const {
  std::uint64_t n = 0;
  for (const auto& ch : rx_) n += ch.size();
  return n;
}

std::uint64_t Network::total_link_bytes() const {
  std::uint64_t n = 0;
  for (const LinkPair& p : gpu_links_) {
    n += p.up->bytes_transmitted() + p.down->bytes_transmitted();
  }
  for (const auto& [key, p] : cube_links_) {
    n += p.up->bytes_transmitted() + p.down->bytes_transmitted();
  }
  return n;
}

void Network::export_stats(StatSet& out) const {
  out.set("net.gpu_up_bytes", static_cast<double>(gpu_up_bytes_));
  out.set("net.gpu_down_bytes", static_cast<double>(gpu_down_bytes_));
  out.set("net.cube_bytes", static_cast<double>(cube_bytes_));
  out.set("net.total_offchip_bytes", static_cast<double>(total_offchip_bytes()));
  out.set("net.packets_injected", static_cast<double>(packets_injected_));
  for (const auto& [type, bytes] : bytes_by_type_) {
    out.set(std::string("net.bytes.") + packet_type_name(type), static_cast<double>(bytes));
  }
}

}  // namespace sndp
