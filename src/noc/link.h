// A unidirectional off-chip link modeled as a serialization server with two
// virtual channels: a control VC (small, latency-critical packets — memory
// requests, offload commands, credits, acks) that preempts the data VC, and
// a data VC (bulk line fills, RDF responses, write data) that observes all
// previously reserved bandwidth.  Control packets are a tiny fraction of
// the bytes, so preemptive priority is a faithful approximation of
// flit-interleaved VCs without per-flit simulation.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "common/units.h"

namespace sndp {

// Priority tiers, highest first: kUrgent (offload commands, acks, credits —
// latency determines the credit-recycle rate of §4.3), kControl (memory and
// RDF/WTA requests), kBulk (line fills, RDF responses, write data).
enum class LinkTier : std::uint8_t { kUrgent, kControl, kBulk };

class Link {
 public:
  Link(double gb_per_s, TimePs propagation_ps)
      : gb_per_s_(gb_per_s), propagation_ps_(propagation_ps) {}

  // Transmit `bytes` starting no earlier than `earliest`.
  // Returns the arrival time at the far end.  When `wait_ps` is non-null it
  // receives the time spent waiting for the tier to free up (start −
  // earliest) — the queueing share of the traversal for latency tracing;
  // the remainder of (arrival − earliest) is serialization + propagation.
  TimePs transmit(TimePs earliest, std::uint32_t bytes, LinkTier tier = LinkTier::kBulk,
                  TimePs* wait_ps = nullptr) {
    const TimePs ser = serialize_ps(bytes, gb_per_s_);
    TimePs start;
    switch (tier) {
      case LinkTier::kUrgent:
        start = std::max(earliest, urgent_free_at_);
        urgent_free_at_ = start + ser;
        ctrl_free_at_ = std::max(ctrl_free_at_, start) + ser;
        bulk_free_at_ = std::max(bulk_free_at_, start) + ser;
        break;
      case LinkTier::kControl:
        start = std::max(earliest, ctrl_free_at_);
        ctrl_free_at_ = start + ser;
        bulk_free_at_ = std::max(bulk_free_at_, start) + ser;
        break;
      case LinkTier::kBulk:
      default:
        start = std::max(earliest, bulk_free_at_);
        bulk_free_at_ = start + ser;
        break;
    }
    bytes_transmitted_ += bytes;
    busy_ps_ += ser;
    ++packets_;
    if (wait_ps != nullptr) *wait_ps = start - earliest;
    return start + ser + propagation_ps_;
  }

  TimePs free_at() const { return bulk_free_at_; }
  std::uint64_t bytes_transmitted() const { return bytes_transmitted_; }
  std::uint64_t packets() const { return packets_; }
  TimePs busy_ps() const { return busy_ps_; }
  double gb_per_s() const { return gb_per_s_; }

 private:
  double gb_per_s_;
  TimePs propagation_ps_;
  TimePs urgent_free_at_ = 0;
  TimePs ctrl_free_at_ = 0;
  TimePs bulk_free_at_ = 0;
  TimePs busy_ps_ = 0;
  std::uint64_t bytes_transmitted_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace sndp
