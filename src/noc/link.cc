// Link is header-only; this TU anchors the module.
#include "noc/link.h"
