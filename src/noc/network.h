// The system interconnect: GPU<->HMC links plus the inter-HMC hypercube
// memory network, with per-packet-type traffic accounting.
//
// Sending computes the full path at injection time and reserves each link
// in order (serialization + per-hop router latency), then deposits the
// packet in the destination node's RX channel at the final arrival time.
// This "lazy link server" model captures serialization and link contention
// exactly for FIFO links without simulating per-flit router state.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "noc/link.h"
#include "noc/packet.h"
#include "noc/router.h"
#include "sim/timed_channel.h"

namespace sndp {

class EpochTimeline;
class LatencyTracer;
class TraceWriter;

class Network {
 public:
  explicit Network(const SystemConfig& cfg);

  // Optional: record every packet flight as a trace event.
  void set_trace(TraceWriter* trace) { trace_ = trace; }

  // Optional: per-hop latency accounting (queue wait vs wire time on every
  // link of the route) for tracked packets.
  void set_latency(LatencyTracer* latency) { latency_ = latency; }

  // Per-epoch timeline hook: the byte counters are polled at the first
  // injection at/after each epoch boundary (they only change on send, so
  // the sampled values are stepping-mode-invariant).
  void set_timeline(EpochTimeline* timeline) { timeline_ = timeline; }

  unsigned gpu_node() const { return num_hmcs_; }
  unsigned num_hmcs() const { return num_hmcs_; }

  // Inject a packet at time `now`; returns its arrival time at dst.
  // src/dst must differ and be valid node ids (HMC 0..H-1 or gpu_node()).
  TimePs send(Packet pkt, TimePs now);

  // RX channel for a node.  The GPU and each HMC drain their own.
  TimedChannel<Packet>& rx(unsigned node) { return rx_.at(node); }
  const TimedChannel<Packet>& rx(unsigned node) const { return rx_.at(node); }

  bool idle() const;

  // Traffic accounting (bytes on the wire, per hop for network links).
  std::uint64_t gpu_up_bytes() const { return gpu_up_bytes_; }      // GPU -> HMC
  std::uint64_t gpu_down_bytes() const { return gpu_down_bytes_; }  // HMC -> GPU
  std::uint64_t cube_bytes() const { return cube_bytes_; }          // HMC <-> HMC
  std::uint64_t total_offchip_bytes() const {
    return gpu_up_bytes_ + gpu_down_bytes_ + cube_bytes_;
  }
  const std::map<PacketType, std::uint64_t>& bytes_by_type() const { return bytes_by_type_; }

  // Flow-audit accessors: packets ever injected, packets currently sitting
  // in RX channels (instantaneous), and bytes summed over every physical
  // link (must equal the per-class byte counters above).
  std::uint64_t packets_injected() const { return packets_injected_; }
  std::uint64_t in_flight_packets() const;
  std::uint64_t total_link_bytes() const;

  void export_stats(StatSet& out) const;

 private:
  struct LinkPair {
    std::unique_ptr<Link> up;    // toward higher node id / toward HMC (GPU links)
    std::unique_ptr<Link> down;  // reverse direction
  };

  Link& gpu_link(unsigned hmc, bool toward_hmc);
  Link& cube_link(unsigned from, unsigned to);

  unsigned num_hmcs_;
  bool pow2_nodes_ = true;  // selects historic vs incomplete-cube routing
  LinkConfig link_cfg_;
  TimePs router_latency_ps_;
  std::vector<LinkPair> gpu_links_;              // one per HMC
  std::map<std::uint64_t, LinkPair> cube_links_; // key: (min<<32)|max
  std::vector<TimedChannel<Packet>> rx_;

  std::uint64_t gpu_up_bytes_ = 0;
  std::uint64_t gpu_down_bytes_ = 0;
  std::uint64_t cube_bytes_ = 0;
  std::map<PacketType, std::uint64_t> bytes_by_type_;
  std::uint64_t packets_injected_ = 0;
  TraceWriter* trace_ = nullptr;
  LatencyTracer* latency_ = nullptr;
  EpochTimeline* timeline_ = nullptr;
};

}  // namespace sndp
