// NetworkPort: the component-facing indirection in front of the Network.
//
// In a serial run every call forwards straight to the wrapped Network — the
// port is a handful of inline one-liners, so the single-threaded path is
// unchanged.  In a parallel-in-time run (DESIGN.md "Parallel-in-time
// simulation") each partition owns one port switched into *deferred* mode:
// send() appends the packet to a per-partition log instead of touching the
// shared Network, and the coordinator replays every logged send through the
// real (single-threaded) Network at the next horizon barrier, sorted into
// the exact order the serial scheduler would have issued them.  Replay in
// serial order makes link reservations, byte counters, timeline polls, and
// latency stamps bit-identical to a serial run.
//
// The replay sort key is the *calling tick context*, not the packet's `now`
// argument: an Hmc forwards vault completions with `done_ps` slightly behind
// its tick time, so two packets' now-arguments can order differently from
// the ticks that issued them.  ClockDomain exposes the calling context via a
// TickOrderProbe (sim/clock.h) that the port snapshots on every deferred
// send: (tick instant, scheduler domain rank, global member rank), with the
// per-partition log position as the final stable tie-break — together these
// reconstruct the serial scheduler's global tick order.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "noc/network.h"
#include "noc/packet.h"
#include "sim/clock.h"
#include "sim/timed_channel.h"

namespace sndp {

class NetworkPort {
 public:
  explicit NetworkPort(Network& net) : net_(&net) {}

  // One logged cross-partition send, waiting for barrier replay.
  struct DeferredSend {
    Packet pkt;
    TimePs now_arg = 0;      // the sender's original `now` argument
    TimePs order_ps = 0;     // tick instant of the calling tick
    std::uint8_t domain_rank = 0;   // scheduler registration order of the domain
    std::uint32_t member_rank = 0;  // global registration order within the domain
  };

  unsigned gpu_node() const { return net_->gpu_node(); }
  unsigned num_hmcs() const { return net_->num_hmcs(); }

  // RX channels are safe to touch directly from the owning partition: the
  // coordinator only pushes into them between windows, and each node's
  // channel is drained only by the partition that owns that node.
  TimedChannel<Packet>& rx(unsigned node) { return net_->rx(node); }
  const TimedChannel<Packet>& rx(unsigned node) const { return net_->rx(node); }

  // Serial mode: forward to Network::send and return the arrival time.
  // Deferred mode: log the send for barrier replay and return kTimeNever
  // (no call site consumes the return value; the sentinel makes any future
  // use of a deferred arrival time fail loudly in tests).
  TimePs send(Packet pkt, TimePs now) {
    if (!deferring_) return net_->send(std::move(pkt), now);
    DeferredSend d;
    d.pkt = std::move(pkt);
    d.now_arg = now;
    if (probe_ != nullptr) {
      d.order_ps = probe_->now;
      d.domain_rank = probe_->domain_rank;
      d.member_rank = probe_->member_rank;
    } else {
      d.order_ps = now;
    }
    log_.push_back(std::move(d));
    return kTimeNever;
  }

  // --- parallel-mode wiring (coordinator side) -------------------------

  void set_deferred(bool on) { deferring_ = on; }
  bool deferred() const { return deferring_; }
  void set_order_probe(const TickOrderProbe* probe) { probe_ = probe; }

  // The log accumulated since the last drain.  Only the coordinator calls
  // these, strictly between windows.
  std::vector<DeferredSend>& pending_sends() { return log_; }

 private:
  Network* net_;
  bool deferring_ = false;
  const TickOrderProbe* probe_ = nullptr;
  std::vector<DeferredSend> log_;
};

}  // namespace sndp
