// Packet formats for baseline memory traffic and the NDP partitioned
// execution protocol (paper Fig. 4).
//
// Sizes model what would be on the wire; the `lane_*` vectors carry the
// functional payload (real addresses and data values) so the simulator can
// verify end-to-end results, but only the bytes a real packet would carry
// are charged to links and energy.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace sndp {

enum class PacketType : std::uint8_t {
  // Baseline execution model.
  kMemRead,      // GPU -> vault: fetch a cache line
  kMemReadResp,  // vault -> GPU: 128 B line
  kMemWrite,     // GPU -> vault: write-through words
  kMemWriteAck,  // vault -> GPU
  // Partitioned-execution protocol (Fig. 2(b), Fig. 4).
  kOfldCmd,      // GPU SM -> target NSU: start PC, mask, live-in registers
  kRdf,          // GPU -> owning vault: read-and-forward request
  kRdfResp,      // vault or GPU cache -> target NSU: requested words only
  kWta,          // GPU -> target NSU: write addresses for a store
  kNsuWrite,     // NSU -> destination vault: computed store data
  kNsuWriteAck,  // vault -> NSU
  kCacheInval,   // vault -> GPU: invalidate stale cached line (§4.2)
  kOfldAck,      // NSU -> GPU SM: block done, live-out registers
  kCredit,       // NSU -> GPU buffer manager: freed buffer entries (§4.3)
  // Page-migration copy flow (migration placement policy): a re-homed page
  // is read line-by-line at the old home, shipped as one bulk packet over
  // the cube links, and written line-by-line at the new home.
  kPageCopyRead,   // vault read of one page line at the old home; also the
                   // (rare) cross-stack kick when the re-home was triggered
                   // at a stack that no longer holds the page
  kPageCopy,       // old home -> new home: the full page payload
  kPageCopyWrite,  // vault write of one page line at the new home
};

const char* packet_type_name(PacketType t);

inline constexpr std::size_t kNumPacketTypes = 17;  // kMemRead..kPageCopyWrite

// Request-lifecycle latency stamp (src/obs/latency.*).  Rides along with the
// packet (and across request->response transfers) accumulating per-segment
// time; inert unless LatencyTracer::start() activated it.  POD on purpose —
// copied wholesale wherever packets are copied or parked.
struct PacketTiming {
  TimePs origin_ps = 0;         // span open (request creation)
  TimePs last_ps = 0;           // last accounted-for instant
  std::uint64_t queue_ps = 0;   // LatSegment::kQueue accumulation
  std::uint64_t link_ps = 0;    // LatSegment::kLink
  std::uint64_t dram_ps = 0;    // LatSegment::kDram
  std::uint64_t cache_ps = 0;   // LatSegment::kCache
  std::uint32_t span_id = 0;    // 1-based sampled-span handle; 0 = unsampled
  std::uint8_t path = 0;        // pre-assigned PathClass (set_path)
  bool has_path = false;
  bool active = false;
};

// Control packets (requests, commands, addresses, credits, acks) ride the
// links' control virtual channel and preempt bulk data (responses, line
// fills, write data).
bool is_control_packet(PacketType t);

// Urgent packets (offload commands, acks, credits, invalidations) preempt
// even control traffic — their latency sets the NDP credit-recycle rate.
bool is_urgent_packet(PacketType t);

// Fig. 4: "SM ID | Warp ID | Seq. num" plus the static block and a unique
// instance number used for internal consistency checks.
struct OffloadPacketId {
  SmId sm = kInvalidId;
  WarpId warp = kInvalidId;
  std::uint32_t seq = 0;       // per memory instruction within the block
  std::uint32_t block = 0;     // static offload block id
  std::uint64_t instance = 0;  // unique per offload-block execution

  // Buffer lookups match on the warp's current offload execution; seq
  // distinguishes entries within it.
  friend bool operator==(const OffloadPacketId&, const OffloadPacketId&) = default;
};

struct Packet {
  PacketType type = PacketType::kMemRead;
  std::uint16_t src_node = 0;  // 0..H-1: HMC; H: the GPU
  std::uint16_t dst_node = 0;
  std::uint32_t size_bytes = 0;  // on-wire size incl. header

  OffloadPacketId oid{};
  Addr line_addr = 0;
  std::uint64_t token = 0;  // requester cookie (baseline path, vault round-trip)

  // Originating tenant (DESIGN.md "Multi-tenant serving").  Stamped at
  // packet creation (SM or NSU), copied onto every response, and used for
  // tenant-keyed latency/outcome counters and QoS credit accounting.
  // Always 0 on the single-tenant path.
  std::uint8_t tenant = 0;

  LaneMask mask = 0;           // lanes this packet covers
  LaneMask expected_mask = 0;  // all lanes of the memory instruction (merge test)
  std::uint8_t target_nsu = 0;
  std::uint8_t mem_width = 0;
  bool mem_f32 = false;
  bool misaligned = false;

  // Functional payload, indexed by lane (valid where `mask` has the bit).
  std::vector<Addr> lane_addrs;
  std::vector<RegValue> lane_data;
  // Register marshalling (kOfldCmd / kOfldAck): ids + per-lane values laid
  // out as values[reg_index * kWarpWidth + lane].
  std::vector<std::uint8_t> reg_ids;
  std::vector<RegValue> reg_values;
  std::vector<std::uint8_t> lane_preds;  // packed predicate bits per lane

  // kCredit payload.
  std::uint16_t credit_cmd = 0;
  std::uint16_t credit_read_data = 0;
  std::uint16_t credit_write_addr = 0;

  // Latency-tracer stamp; inert when tracing is disabled.
  PacketTiming lt{};
};

// --- On-wire size calculators (header + Fig. 4 fields). -------------------
inline constexpr unsigned kPktHeaderBytes = 8;
inline constexpr unsigned kOidBytes = 4;
inline constexpr unsigned kAddrBytes = 8;
inline constexpr unsigned kMaskBytes = 4;
inline constexpr unsigned kTargetBytes = 1;
inline constexpr unsigned kRegBytes = 8;
inline constexpr unsigned kLineBytes = 128;

unsigned popcount_mask(LaneMask m);

// Offload command: oid + start PC + mask + target (+ registers + preds).
unsigned cmd_packet_bytes(unsigned num_regs, unsigned active_lanes, bool with_preds);
// RDF request / WTA: oid + base address + mask + target (+ per-lane offsets
// when misaligned).
unsigned rdf_wta_packet_bytes(unsigned active_lanes, bool misaligned);
// RDF response: oid + base + mask + only the words actually accessed.
unsigned rdf_resp_packet_bytes(unsigned active_lanes, unsigned width);
// NSU write: address + data words (+ offsets when misaligned).
unsigned nsu_write_packet_bytes(unsigned active_lanes, unsigned width, bool misaligned);
unsigned ofld_ack_packet_bytes(unsigned num_regs, unsigned active_lanes);
unsigned small_packet_bytes();             // acks / credits
unsigned inval_packet_bytes();             // cache invalidation
unsigned mem_read_req_bytes();             // baseline line fetch request
unsigned mem_read_resp_bytes();            // baseline line fetch response
unsigned mem_write_req_bytes(unsigned touched_bytes);  // write-through words

std::string to_string(const Packet& p);

}  // namespace sndp
