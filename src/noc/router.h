// Route computation for the memory network.
//
// The 2^k HMCs form a k-dimensional hypercube (paper §5: 3-D hypercube for
// 8 HMCs, 3 links per HMC); the GPU hangs off every HMC through a dedicated
// bidirectional link (8 GPU links total).  Routing is deterministic
// dimension-order: resolve the lowest differing address bit first — acyclic
// channel dependencies, hence deadlock-free.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sndp {

// Hop count between two hypercube nodes.
unsigned hypercube_distance(unsigned a, unsigned b);

// Node sequence a -> ... -> b (inclusive of both endpoints).
std::vector<unsigned> hypercube_route(unsigned a, unsigned b);

// Number of network dimensions for `num_nodes` (power of two).
unsigned hypercube_dimensions(unsigned num_nodes);

}  // namespace sndp
