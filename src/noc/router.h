// Route computation for the memory network.
//
// The 2^k HMCs form a k-dimensional hypercube (paper §5: 3-D hypercube for
// 8 HMCs, 3 links per HMC); the GPU hangs off every HMC through a dedicated
// bidirectional link (8 GPU links total).  Routing is deterministic
// dimension-order: resolve the lowest differing address bit first — acyclic
// channel dependencies, hence deadlock-free.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sndp {

// Hop count between two hypercube nodes.
unsigned hypercube_distance(unsigned a, unsigned b);

// Upper bound on a route's node count: the endpoints differ in at most 32
// address bits (unsigned), giving popcount(a ^ b) <= 32 intermediate steps.
inline constexpr unsigned kMaxRouteNodes = 33;

// Node sequence a -> ... -> b (inclusive of both endpoints) written into a
// caller-provided buffer of at least hypercube_distance(a, b) + 1 (bounded
// by kMaxRouteNodes) entries; returns the node count.  Allocation-free —
// this sits on the per-packet fast path of Network::send.
unsigned hypercube_route(unsigned a, unsigned b, unsigned* out);

// Convenience wrapper for tests and tools (allocates).
std::vector<unsigned> hypercube_route(unsigned a, unsigned b);

// Number of network dimensions for `num_nodes` (power of two).
unsigned hypercube_dimensions(unsigned num_nodes);

}  // namespace sndp
