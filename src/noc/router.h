// Route computation for the memory network.
//
// The 2^k HMCs form a k-dimensional hypercube (paper §5: 3-D hypercube for
// 8 HMCs, 3 links per HMC); the GPU hangs off every HMC through a dedicated
// bidirectional link (8 GPU links total).  Routing is deterministic
// dimension-order: resolve the lowest differing address bit first — acyclic
// channel dependencies, hence deadlock-free.
//
// Non-power-of-two node counts use the INCOMPLETE hypercube: nodes
// 0..N-1 of the enclosing 2^ceil(log2 N) cube with every single-bit edge
// whose endpoints both exist.  Dimension-order routing can leave that node
// set (6 -> 1 via lowest-bit-first visits 7), so incomplete routes descend
// first — clearing high bits only ever produces smaller, hence valid,
// intermediates — then ascend setting the destination's low bits, which
// stay <= b.  Still deterministic and cycle-free (monotone descent followed
// by monotone ascent).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sndp {

// Hop count between two hypercube nodes.
unsigned hypercube_distance(unsigned a, unsigned b);

// Upper bound on a route's node count: the endpoints differ in at most 32
// address bits (unsigned), giving popcount(a ^ b) <= 32 intermediate steps.
inline constexpr unsigned kMaxRouteNodes = 33;

// Node sequence a -> ... -> b (inclusive of both endpoints) written into a
// caller-provided buffer of at least hypercube_distance(a, b) + 1 (bounded
// by kMaxRouteNodes) entries; returns the node count.  Allocation-free —
// this sits on the per-packet fast path of Network::send.
unsigned hypercube_route(unsigned a, unsigned b, unsigned* out);

// Convenience wrapper for tests and tools (allocates).
std::vector<unsigned> hypercube_route(unsigned a, unsigned b);

// Route on the incomplete hypercube over nodes [0, num_nodes): every
// intermediate stays < num_nodes.  For power-of-two num_nodes this is NOT
// necessarily the same node sequence as hypercube_route (which the network
// keeps using there, preserving bit-identical link traffic).
unsigned incomplete_hypercube_route(unsigned a, unsigned b, unsigned num_nodes,
                                    unsigned* out);
std::vector<unsigned> incomplete_hypercube_route(unsigned a, unsigned b,
                                                 unsigned num_nodes);

// Number of network dimensions for `num_nodes`: the enclosing cube's
// ceil(log2(num_nodes)).
unsigned hypercube_dimensions(unsigned num_nodes);

}  // namespace sndp
