#include "noc/router.h"

#include <bit>

namespace sndp {

unsigned hypercube_distance(unsigned a, unsigned b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

unsigned hypercube_route(unsigned a, unsigned b, unsigned* out) {
  unsigned n = 0;
  out[n++] = a;
  unsigned cur = a;
  while (cur != b) {
    const unsigned diff = cur ^ b;
    const unsigned bit = diff & (~diff + 1u);  // lowest set bit
    cur ^= bit;
    out[n++] = cur;
  }
  return n;
}

std::vector<unsigned> hypercube_route(unsigned a, unsigned b) {
  unsigned buf[kMaxRouteNodes];
  const unsigned n = hypercube_route(a, b, buf);
  return std::vector<unsigned>(buf, buf + n);
}

unsigned hypercube_dimensions(unsigned num_nodes) {
  return static_cast<unsigned>(std::countr_zero(num_nodes));
}

}  // namespace sndp
