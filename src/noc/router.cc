#include "noc/router.h"

#include <bit>

namespace sndp {

unsigned hypercube_distance(unsigned a, unsigned b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

unsigned hypercube_route(unsigned a, unsigned b, unsigned* out) {
  unsigned n = 0;
  out[n++] = a;
  unsigned cur = a;
  while (cur != b) {
    const unsigned diff = cur ^ b;
    const unsigned bit = diff & (~diff + 1u);  // lowest set bit
    cur ^= bit;
    out[n++] = cur;
  }
  return n;
}

std::vector<unsigned> hypercube_route(unsigned a, unsigned b) {
  unsigned buf[kMaxRouteNodes];
  const unsigned n = hypercube_route(a, b, buf);
  return std::vector<unsigned>(buf, buf + n);
}

unsigned incomplete_hypercube_route(unsigned a, unsigned b, unsigned num_nodes,
                                    unsigned* out) {
  unsigned n = 0;
  out[n++] = a;
  unsigned cur = a;
  // Descend: clear the highest bit cur has that b lacks.  cur strictly
  // decreases each step, so every intermediate stays < num_nodes.
  while ((cur & ~b) != 0) {
    const unsigned excess = cur & ~b;
    cur ^= 1u << (31 - static_cast<unsigned>(std::countl_zero(excess)));
    out[n++] = cur;
  }
  // Ascend: set b's missing bits lowest-first.  cur is now a subset of b,
  // and stays one, so every intermediate is <= b < num_nodes.
  while (cur != b) {
    const unsigned diff = cur ^ b;
    cur |= diff & (~diff + 1u);  // lowest missing bit
    out[n++] = cur;
  }
  (void)num_nodes;
  return n;
}

std::vector<unsigned> incomplete_hypercube_route(unsigned a, unsigned b,
                                                 unsigned num_nodes) {
  unsigned buf[kMaxRouteNodes];
  const unsigned n = incomplete_hypercube_route(a, b, num_nodes, buf);
  return std::vector<unsigned>(buf, buf + n);
}

unsigned hypercube_dimensions(unsigned num_nodes) {
  return num_nodes <= 1 ? 0 : static_cast<unsigned>(std::bit_width(num_nodes - 1));
}

}  // namespace sndp
