#include "noc/router.h"

#include <bit>

namespace sndp {

unsigned hypercube_distance(unsigned a, unsigned b) {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

std::vector<unsigned> hypercube_route(unsigned a, unsigned b) {
  std::vector<unsigned> path;
  path.push_back(a);
  unsigned cur = a;
  while (cur != b) {
    const unsigned diff = cur ^ b;
    const unsigned bit = diff & (~diff + 1u);  // lowest set bit
    cur ^= bit;
    path.push_back(cur);
  }
  return path;
}

unsigned hypercube_dimensions(unsigned num_nodes) {
  return static_cast<unsigned>(std::countr_zero(num_nodes));
}

}  // namespace sndp
