#include "noc/packet.h"

#include <bit>
#include <sstream>

namespace sndp {

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kMemRead: return "MEM_RD";
    case PacketType::kMemReadResp: return "MEM_RD_RESP";
    case PacketType::kMemWrite: return "MEM_WR";
    case PacketType::kMemWriteAck: return "MEM_WR_ACK";
    case PacketType::kOfldCmd: return "OFLD_CMD";
    case PacketType::kRdf: return "RDF";
    case PacketType::kRdfResp: return "RDF_RESP";
    case PacketType::kWta: return "WTA";
    case PacketType::kNsuWrite: return "NSU_WR";
    case PacketType::kNsuWriteAck: return "NSU_WR_ACK";
    case PacketType::kCacheInval: return "INVAL";
    case PacketType::kOfldAck: return "OFLD_ACK";
    case PacketType::kCredit: return "CREDIT";
    case PacketType::kPageCopyRead: return "PGCP_RD";
    case PacketType::kPageCopy: return "PGCP";
    case PacketType::kPageCopyWrite: return "PGCP_WR";
  }
  return "?";
}

bool is_control_packet(PacketType t) {
  switch (t) {
    case PacketType::kMemRead:
    case PacketType::kMemWriteAck:
    case PacketType::kOfldCmd:
    case PacketType::kRdf:
    case PacketType::kWta:
    case PacketType::kNsuWriteAck:
    case PacketType::kCacheInval:
    case PacketType::kOfldAck:
    case PacketType::kCredit:
    case PacketType::kPageCopyRead:
      return true;
    case PacketType::kMemReadResp:
    case PacketType::kMemWrite:
    case PacketType::kRdfResp:
    case PacketType::kNsuWrite:
    case PacketType::kPageCopy:
    case PacketType::kPageCopyWrite:
      return false;
  }
  return false;
}

bool is_urgent_packet(PacketType t) {
  switch (t) {
    case PacketType::kOfldCmd:
    case PacketType::kOfldAck:
    case PacketType::kCredit:
    case PacketType::kNsuWriteAck:
    case PacketType::kCacheInval:
      return true;
    default:
      return false;
  }
}

unsigned popcount_mask(LaneMask m) { return static_cast<unsigned>(std::popcount(m)); }

unsigned cmd_packet_bytes(unsigned num_regs, unsigned active_lanes, bool with_preds) {
  unsigned bytes = kPktHeaderBytes + kOidBytes + kAddrBytes + kMaskBytes + kTargetBytes;
  bytes += kRegBytes * num_regs * active_lanes;
  if (with_preds) bytes += active_lanes;  // 8 predicate bits per lane
  return bytes;
}

unsigned rdf_wta_packet_bytes(unsigned active_lanes, bool misaligned) {
  unsigned bytes = kPktHeaderBytes + kOidBytes + kAddrBytes + kMaskBytes + kTargetBytes;
  if (misaligned) bytes += active_lanes;  // 1 B offset per lane (Fig. 4(b))
  return bytes;
}

unsigned rdf_resp_packet_bytes(unsigned active_lanes, unsigned width) {
  return kPktHeaderBytes + kOidBytes + kAddrBytes + kMaskBytes + width * active_lanes;
}

unsigned nsu_write_packet_bytes(unsigned active_lanes, unsigned width, bool misaligned) {
  unsigned bytes = kPktHeaderBytes + kAddrBytes + width * active_lanes;
  if (misaligned) bytes += active_lanes;
  return bytes;
}

unsigned ofld_ack_packet_bytes(unsigned num_regs, unsigned active_lanes) {
  return kPktHeaderBytes + kOidBytes + kRegBytes * num_regs * active_lanes;
}

unsigned small_packet_bytes() { return kPktHeaderBytes + kOidBytes; }

unsigned inval_packet_bytes() { return kPktHeaderBytes + kAddrBytes; }

unsigned mem_read_req_bytes() { return kPktHeaderBytes + kAddrBytes; }

unsigned mem_read_resp_bytes() { return kPktHeaderBytes + kLineBytes; }

unsigned mem_write_req_bytes(unsigned touched_bytes) {
  return kPktHeaderBytes + kAddrBytes + kMaskBytes + touched_bytes;
}

std::string to_string(const Packet& p) {
  std::ostringstream os;
  os << packet_type_name(p.type) << " " << p.src_node << "->" << p.dst_node << " "
     << p.size_bytes << "B line=0x" << std::hex << p.line_addr << std::dec << " oid={sm"
     << p.oid.sm << " w" << p.oid.warp << " seq" << p.oid.seq << " blk" << p.oid.block << "}";
  return os.str();
}

}  // namespace sndp
