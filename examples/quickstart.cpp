// Quickstart: run one workload under the baseline and under NDP with the
// dynamic + cache-aware governor, verify functional correctness, and print
// the speedup — the paper's headline mechanism in ~40 lines.
//
//   ./quickstart [workload] [scale]
//   workload: VADD (default) or any Table 1 name; scale: tiny|small|large
#include <cstdio>
#include <string>

#include "sndp.h"

using namespace sndp;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "VADD";
  const std::string scale_str = argc > 2 ? argv[2] : "small";
  const ProblemScale scale = scale_str == "tiny"    ? ProblemScale::kTiny
                             : scale_str == "large" ? ProblemScale::kLarge
                                                    : ProblemScale::kSmall;

  // Baseline: the paper's Table 2 GPU, NDP off.
  SystemConfig base_cfg = SystemConfig::paper();
  base_cfg.governor.mode = OffloadMode::kOff;

  // NDP with dynamic offload ratio + cache-locality-aware decisions (§7).
  SystemConfig ndp_cfg = SystemConfig::paper();
  ndp_cfg.governor.mode = OffloadMode::kDynamicCache;

  std::printf("workload: %s (%s)\n", name.c_str(), scale_str.c_str());

  auto wl_base = make_workload(name, scale);
  const RunResult base = Simulator(base_cfg).run(*wl_base);
  std::printf("baseline      : %10llu cycles  ipc=%5.2f  verified=%s\n",
              static_cast<unsigned long long>(base.sm_cycles), base.ipc,
              base.verified ? "yes" : "NO");

  auto wl_ndp = make_workload(name, scale);
  const RunResult ndp = Simulator(ndp_cfg).run(*wl_ndp);
  std::printf("NDP(Dyn)_Cache: %10llu cycles  ipc=%5.2f  verified=%s\n",
              static_cast<unsigned long long>(ndp.sm_cycles), ndp.ipc,
              ndp.verified ? "yes" : "NO");

  std::printf("speedup  : %.3fx\n", ndp.speedup_vs(base));
  std::printf("energy   : baseline %.4f J -> NDP %.4f J (%.1f%%)\n", base.energy.total(),
              ndp.energy.total(), 100.0 * ndp.energy.total() / base.energy.total());
  std::printf("GPU-link traffic: %.1f MB -> %.1f MB; memory-network: %.1f MB\n",
              base.gpu_link_bytes / 1e6, ndp.gpu_link_bytes / 1e6, ndp.cube_link_bytes / 1e6);
  return base.verified && ndp.verified ? 0 : 1;
}
