// sndpsim — command-line front end for the simulator.
//
//   sndpsim --workload VADD --mode dyn-cache --scale small
//   sndpsim -w KMN -m static -r 0.6 --sms 128 --stats
//   sndpsim -w BFS -m always --nsu-mhz 175 --csv results.csv
//
// Options:
//   -w, --workload NAME     Table 1 workload or operator-library generator
//                           (GEMM/SPMV/REDUCE/ATTN; default VADD); "all"
//                           runs every kernel and operator.
//   -s, --scale S           tiny | small | large          (default small)
//   -m, --mode M            off | always | static | dyn | dyn-cache (default dyn-cache)
//   -r, --ratio R           static offload ratio           (default 0.5)
//   -e, --epoch N           dynamic epoch length in SM cycles (default 1000)
//       --sms N             number of SMs                  (default 64)
//       --hmcs N            number of HMCs (power of two)  (default 8)
//       --nsu-mhz N         NSU clock in MHz               (default 350)
//       --seed N            page-placement seed
//       --ro-cache          enable the NSU read-only cache (§7.1)
//       --optimal-target    all-access target selection ablation
//       --stats             dump the full statistics set
//       --csv FILE          append one CSV row per run to FILE
//   -j, --jobs N            run independent simulations on N threads
//                           (0 = all hardware threads; output is identical
//                           to a serial run — determinism is tested)
//       --stats-json FILE   write full per-run stats as sndp-sweep-v1 JSON
//       --timeout SECONDS   abort any single run past this wall-clock budget
//       --partitions N      parallel-in-time execution: shard one run across
//                           N threads (hub + stack groups), bit-identical to
//                           serial; 1 (default) = serial path
//       --no-ff             disable idle fast-forward (naive edge-by-edge
//                           stepping; results are bit-identical, only slower)
//       --no-audit          disable the flow-conservation stats audit
//       --no-profile        disable the cycle-stack profiler (no cyc.* stats,
//                           no cycle_stack JSON object; bucket counters are
//                           never touched)
//       --profile-csv FILE  write the per-tenant cycle stacks as CSV
//                           (component,row,bucket,cycles; "-" = stdout; with
//                           -w all the workload name is appended like
//                           --epoch-csv)
//       --no-latency        disable request-lifecycle latency tracing
//       --latency-sample N  sample every Nth tracked request per type for a
//                           full per-hop span (default 64; 0 = histograms
//                           only, no spans)
//       --epoch-csv FILE    write the per-epoch metrics timeline as CSV
//                           ("-" = stdout; with -w all, the workload name is
//                           appended to FILE before its extension)
//       --trace FILE        write a Chrome-trace (Perfetto) JSON, including
//                           per-epoch governor counter series and sampled
//                           request-latency spans as flow events
//       --tenants SPEC      multi-tenant serving: run SPEC's workloads as
//                           concurrent kernel streams in disjoint address
//                           slices of one memory.  SPEC is a comma list of
//                           NAME[:WEIGHT[:PRIORITY]], e.g.
//                           "BFS:2:0,VADD,KMN" (weight default 1, priority
//                           default 0 = highest).  Incompatible with -w.
//       --arbiter A         CTA arbiter for --tenants:
//                           rr | weighted | strict         (default rr)
//       --nsu-quota N       per-tenant NSU warp-slot quota (0 = off)
//       --credit-share F    per-tenant NoC credit cap as a fraction of each
//                           pool (0 = off)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sndp.h"

using namespace sndp;

namespace {

struct Options {
  std::string workload = "VADD";
  ProblemScale scale = ProblemScale::kSmall;
  OffloadMode mode = OffloadMode::kDynamicCache;
  double ratio = 0.5;
  Cycle epoch = 1000;
  unsigned sms = 64;
  unsigned hmcs = 8;
  unsigned nsu_mhz = 350;
  std::uint64_t seed = 0x5EED;
  bool ro_cache = false;
  bool optimal_target = false;
  bool dump_stats = false;
  std::string csv;
  unsigned jobs = 1;
  std::string stats_json;
  double timeout_s = 0.0;
  bool fast_forward = true;
  bool audit = true;
  bool profile = true;
  std::string profile_csv;
  bool latency = true;
  unsigned partitions = 1;
  unsigned latency_sample = 64;
  std::string epoch_csv;
  std::string trace_path;
  std::string tenants;  // non-empty: multi-tenant serving spec
  TenantArbiter arbiter = TenantArbiter::kRoundRobin;
  unsigned nsu_quota = 0;
  double credit_share = 0.0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-w WORKLOAD|all] [-s tiny|small|large] "
               "[-m off|always|static|dyn|dyn-cache] [-r RATIO] [-e EPOCH]\n"
               "          [--sms N] [--hmcs N] [--nsu-mhz N] [--seed N] "
               "[--ro-cache] [--optimal-target] [--stats] [--csv FILE]\n"
               "          [-j JOBS] [--stats-json FILE] [--timeout SECONDS] [--no-ff]\n"
               "          [--partitions N]\n"
               "          [--no-audit] [--no-profile] [--profile-csv FILE]\n"
               "          [--no-latency] [--latency-sample N]\n"
               "          [--epoch-csv FILE] [--trace FILE]\n"
               "          [--tenants NAME[:W[:P]],... [--arbiter rr|weighted|strict]\n"
               "           [--nsu-quota N] [--credit-share F]]\n",
               argv0);
  std::exit(2);
}

// With -w all, one CSV per workload: insert the name before the extension.
std::string epoch_csv_path(const std::string& base, const std::string& name, bool multi) {
  if (!multi || base.empty() || base == "-") return base;
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return base + "-" + name;
  }
  return base.substr(0, dot) + "-" + name + base.substr(dot);
}

// Cycle-stack dump: one CSV row per (component, tenant row, bucket).  Writes
// only the header when the run had profiling disabled.
bool write_profile_csv(const std::string& path, const CycleStackSummary& cs) {
  std::FILE* out = (path.empty() || path == "-") ? stdout : std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fprintf(out, "component,row,bucket,cycles\n");
  if (cs.enabled) {
    auto row_name = [&](unsigned row) {
      return row == cs.tenants ? std::string("shared") : "t" + std::to_string(row);
    };
    for (unsigned row = 0; row < cs.sm.rows.size(); ++row) {
      for (std::size_t b = 0; b < kNumSmBuckets; ++b) {
        std::fprintf(out, "sm,%s,%s,%llu\n", row_name(row).c_str(),
                     sm_bucket_name(static_cast<SmBucket>(b)),
                     static_cast<unsigned long long>(cs.sm.rows[row][b]));
      }
    }
    for (unsigned row = 0; row < cs.nsu.rows.size(); ++row) {
      for (std::size_t b = 0; b < kNumNsuBuckets; ++b) {
        std::fprintf(out, "nsu,%s,%s,%llu\n", row_name(row).c_str(),
                     nsu_bucket_name(static_cast<NsuBucket>(b)),
                     static_cast<unsigned long long>(cs.nsu.rows[row][b]));
      }
    }
    for (unsigned row = 0; row < cs.vault.rows.size(); ++row) {
      for (std::size_t b = 0; b < kNumVaultBuckets; ++b) {
        std::fprintf(out, "vault,%s,%s,%llu\n", row_name(row).c_str(),
                     vault_bucket_name(static_cast<VaultBucket>(b)),
                     static_cast<unsigned long long>(cs.vault.rows[row][b]));
      }
    }
  }
  const bool ok = std::ferror(out) == 0;
  if (out != stdout) std::fclose(out);
  return ok;
}

const char* mode_name(OffloadMode m) {
  switch (m) {
    case OffloadMode::kOff: return "off";
    case OffloadMode::kAlways: return "always";
    case OffloadMode::kStaticRatio: return "static";
    case OffloadMode::kDynamic: return "dyn";
    case OffloadMode::kDynamicCache: return "dyn-cache";
  }
  return "?";
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-w" || a == "--workload") {
      o.workload = need_value(i);
    } else if (a == "-s" || a == "--scale") {
      const std::string s = need_value(i);
      o.scale = s == "tiny"    ? ProblemScale::kTiny
                : s == "large" ? ProblemScale::kLarge
                : s == "small" ? ProblemScale::kSmall
                               : (usage(argv[0]), ProblemScale::kSmall);
    } else if (a == "-m" || a == "--mode") {
      const std::string m = need_value(i);
      if (m == "off") o.mode = OffloadMode::kOff;
      else if (m == "always") o.mode = OffloadMode::kAlways;
      else if (m == "static") o.mode = OffloadMode::kStaticRatio;
      else if (m == "dyn") o.mode = OffloadMode::kDynamic;
      else if (m == "dyn-cache") o.mode = OffloadMode::kDynamicCache;
      else usage(argv[0]);
    } else if (a == "-r" || a == "--ratio") {
      o.ratio = std::stod(need_value(i));
    } else if (a == "-e" || a == "--epoch") {
      o.epoch = std::stoull(need_value(i));
    } else if (a == "--sms") {
      o.sms = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a == "--hmcs") {
      o.hmcs = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a == "--nsu-mhz") {
      o.nsu_mhz = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a == "--seed") {
      o.seed = std::stoull(need_value(i));
    } else if (a == "--ro-cache") {
      o.ro_cache = true;
    } else if (a == "--optimal-target") {
      o.optimal_target = true;
    } else if (a == "--stats") {
      o.dump_stats = true;
    } else if (a == "--csv") {
      o.csv = need_value(i);
    } else if (a == "-j" || a == "--jobs") {
      o.jobs = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a == "--stats-json") {
      o.stats_json = need_value(i);
    } else if (a == "--timeout") {
      o.timeout_s = std::stod(need_value(i));
    } else if (a == "--no-ff") {
      o.fast_forward = false;
    } else if (a == "--partitions") {
      o.partitions = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a.rfind("--partitions=", 0) == 0) {
      o.partitions = static_cast<unsigned>(std::stoul(a.substr(13)));
    } else if (a == "--no-audit") {
      o.audit = false;
    } else if (a == "--no-profile") {
      o.profile = false;
    } else if (a == "--profile-csv") {
      o.profile_csv = need_value(i);
    } else if (a.rfind("--profile-csv=", 0) == 0) {
      o.profile_csv = a.substr(14);
    } else if (a == "--no-latency") {
      o.latency = false;
    } else if (a == "--latency-sample") {
      o.latency_sample = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a.rfind("--latency-sample=", 0) == 0) {
      o.latency_sample = static_cast<unsigned>(std::stoul(a.substr(17)));
    } else if (a == "--epoch-csv") {
      o.epoch_csv = need_value(i);
    } else if (a.rfind("--epoch-csv=", 0) == 0) {
      o.epoch_csv = a.substr(12);
    } else if (a == "--trace") {
      o.trace_path = need_value(i);
    } else if (a == "--tenants") {
      o.tenants = need_value(i);
    } else if (a.rfind("--tenants=", 0) == 0) {
      o.tenants = a.substr(10);
    } else if (a == "--arbiter") {
      const std::string arb = need_value(i);
      if (arb == "rr") o.arbiter = TenantArbiter::kRoundRobin;
      else if (arb == "weighted") o.arbiter = TenantArbiter::kWeightedShare;
      else if (arb == "strict") o.arbiter = TenantArbiter::kStrictPriority;
      else usage(argv[0]);
    } else if (a == "--nsu-quota") {
      o.nsu_quota = static_cast<unsigned>(std::stoul(need_value(i)));
    } else if (a == "--credit-share") {
      o.credit_share = std::stod(need_value(i));
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

SystemConfig config_of(const Options& o) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.num_sms = o.sms;
  cfg.num_hmcs = o.hmcs;
  cfg.clocks.nsu_khz = static_cast<std::uint64_t>(o.nsu_mhz) * 1000;
  cfg.governor.mode = o.mode;
  cfg.governor.static_ratio = o.ratio;
  cfg.governor.epoch_cycles = o.epoch;
  cfg.placement_seed = o.seed;
  cfg.nsu.read_only_cache = o.ro_cache;
  cfg.optimal_target_selection = o.optimal_target;
  cfg.fast_forward = o.fast_forward;
  cfg.parallel_partitions = o.partitions;
  cfg.audit = o.audit;
  cfg.profile = o.profile;
  cfg.latency_trace = o.latency;
  cfg.latency_sample = o.latency_sample;
  cfg.trace_path = o.trace_path;
  cfg.tenancy.arbiter = o.arbiter;
  cfg.tenancy.nsu_warp_quota = o.nsu_quota;
  cfg.tenancy.credit_share = o.credit_share;
  return cfg;
}

// --tenants path: NAME[:WEIGHT[:PRIORITY]] entries, one concurrent run.
int run_tenants_main(const Options& o) {
  struct Spec {
    std::string name;
    double weight = 1.0;
    unsigned priority = 0;
  };
  std::vector<Spec> specs;
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = o.tenants.find(',', pos);
    std::string entry = o.tenants.substr(pos, comma - pos);
    pos = comma == std::string::npos ? comma : comma + 1;
    if (entry.empty()) continue;
    Spec s;
    const std::size_t c1 = entry.find(':');
    s.name = entry.substr(0, c1);
    if (c1 != std::string::npos) {
      const std::size_t c2 = entry.find(':', c1 + 1);
      s.weight = std::stod(entry.substr(c1 + 1, c2 - c1 - 1));
      if (c2 != std::string::npos) {
        s.priority = static_cast<unsigned>(std::stoul(entry.substr(c2 + 1)));
      }
    }
    specs.push_back(std::move(s));
  }
  if (specs.empty()) {
    std::fprintf(stderr, "--tenants: empty spec\n");
    return 2;
  }

  std::vector<std::unique_ptr<Workload>> wls;
  std::vector<TenantDesc> descs;
  std::string mix_name;
  for (const Spec& s : specs) {
    wls.push_back(make_workload(s.name, o.scale));
    descs.push_back(TenantDesc{wls.back().get(), s.weight, s.priority});
    mix_name += (mix_name.empty() ? "" : "+") + s.name;
  }

  const SystemConfig cfg = config_of(o);
  Simulator sim(cfg);
  const auto start = std::chrono::steady_clock::now();
  const RunResult r = sim.run_tenants(descs, mix_name);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("%-8s mode=%-9s cycles=%-10llu ipc=%-6.2f verified=%-3s "
              "gpu-link=%.2fMB network=%.2fMB energy=%.4fJ\n",
              mix_name.c_str(), mode_name(o.mode),
              static_cast<unsigned long long>(r.sm_cycles), r.ipc,
              r.verified ? "yes" : "NO", r.gpu_link_bytes / 1e6,
              r.cube_link_bytes / 1e6, r.energy.total());
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const TenantResult& tr = r.tenants[t];
    std::printf("  t%zu %-8s weight=%-4.1f prio=%-2u finish=%-10llu issued=%-10llu "
                "l2(h/m/g)=%llu/%llu/%llu verified=%s\n",
                t, tr.name.c_str(), specs[t].weight, specs[t].priority,
                static_cast<unsigned long long>(tr.finish_cycle),
                static_cast<unsigned long long>(tr.issued),
                static_cast<unsigned long long>(tr.l2_hits),
                static_cast<unsigned long long>(tr.l2_misses),
                static_cast<unsigned long long>(tr.l2_merged),
                tr.verified ? "yes" : "NO");
  }
  if (o.dump_stats) std::fputs(r.stats.to_string().c_str(), stdout);
  if (o.dump_stats && r.latency_enabled) {
    std::printf("  request latency by path class:\n");
    print_latency_table(r.latency, "    ");
  }
  if (!o.profile_csv.empty() && !write_profile_csv(o.profile_csv, r.cycle_stack)) {
    std::fprintf(stderr, "failed to write profile CSV to '%s'\n", o.profile_csv.c_str());
    return 1;
  }
  if (!o.stats_json.empty()) {
    SweepOutcome out;
    out.point.id = mix_name + "/" + mode_name(o.mode);
    out.point.workload = mix_name;
    out.point.scale = o.scale;
    out.point.cfg = cfg;
    out.result = r;
    out.ran = true;
    out.wall_seconds = wall;
    if (!write_sweep_json(o.stats_json, {out}, 1)) {
      std::fprintf(stderr, "failed to write stats JSON to '%s'\n", o.stats_json.c_str());
      return 1;
    }
  }
  return r.verified && r.completed ? 0 : 1;
}

int report_one(const Options& o, const std::string& name, const RunResult& r) {
  std::printf("%-8s mode=%-9s cycles=%-10llu ipc=%-6.2f verified=%-3s "
              "gpu-link=%.2fMB network=%.2fMB energy=%.4fJ\n",
              name.c_str(), mode_name(o.mode),
              static_cast<unsigned long long>(r.sm_cycles), r.ipc,
              r.verified ? "yes" : "NO", r.gpu_link_bytes / 1e6, r.cube_link_bytes / 1e6,
              r.energy.total());
  if (o.dump_stats) std::fputs(r.stats.to_string().c_str(), stdout);
  if (o.dump_stats && r.latency_enabled) {
    std::printf("  request latency by path class:\n");
    print_latency_table(r.latency, "    ");
  }
  if (!o.csv.empty()) {
    std::ofstream out(o.csv, std::ios::app);
    out << name << ',' << mode_name(o.mode) << ',' << o.ratio << ',' << r.sm_cycles << ','
        << r.ipc << ',' << (r.verified ? 1 : 0) << ',' << r.gpu_link_bytes << ','
        << r.cube_link_bytes << ',' << r.energy.total() << '\n';
  }
  return r.verified && r.completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  if (!o.tenants.empty()) return run_tenants_main(o);

  // All runs — one or many — go through the sweep runner, so -j parallelism,
  // per-run wall-clock timeouts, and the JSON export behave identically for
  // a single workload and for `-w all`.
  std::vector<std::string> names;
  if (o.workload == "all") {
    names = all_workload_names();
  } else {
    names.push_back(o.workload);
  }

  SweepRunner runner({.jobs = o.jobs, .point_timeout_s = o.timeout_s, .progress = false});
  for (const std::string& name : names) {
    SweepPoint p;
    p.id = name + "/" + mode_name(o.mode);
    p.workload = name;
    p.scale = o.scale;
    p.cfg = config_of(o);
    runner.add(std::move(p));
  }
  runner.run();

  int rc = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const SweepOutcome& out = runner.outcome(i);
    if (!out.ran) {
      std::fprintf(stderr, "%s: %s\n", names[i].c_str(),
                   out.error.empty() ? "did not run" : out.error.c_str());
      rc = 1;
      continue;
    }
    if (out.timed_out) {
      std::fprintf(stderr, "%s: aborted after wall-clock timeout (%.1fs)\n",
                   names[i].c_str(), out.wall_seconds);
    }
    rc |= report_one(o, names[i], out.result);
    if (!o.epoch_csv.empty()) {
      const std::string path = epoch_csv_path(o.epoch_csv, names[i], names.size() > 1);
      if (!write_epoch_csv(path, out.result.timeline)) {
        std::fprintf(stderr, "failed to write epoch CSV to '%s'\n", path.c_str());
        rc = 1;
      }
    }
    if (!o.profile_csv.empty()) {
      const std::string path = epoch_csv_path(o.profile_csv, names[i], names.size() > 1);
      if (!write_profile_csv(path, out.result.cycle_stack)) {
        std::fprintf(stderr, "failed to write profile CSV to '%s'\n", path.c_str());
        rc = 1;
      }
    }
  }
  if (!o.stats_json.empty() && !write_sweep_json(o.stats_json, runner.outcomes(), o.jobs)) {
    std::fprintf(stderr, "failed to write stats JSON to '%s'\n", o.stats_json.c_str());
    rc = 1;
  }
  return rc;
}
