// Offload-ratio explorer: sweeps the static offload ratio for one workload
// (paper §7.1, Fig. 9) and compares against the dynamic and cache-aware
// governors — a direct view of why no single static ratio wins everywhere.
//
//   ./offload_explorer [workload] [scale] [epoch_cycles]
#include <algorithm>
#include <cstdio>
#include <string>

#include "sndp.h"

using namespace sndp;

namespace {

RunResult run_mode(const std::string& name, ProblemScale scale, OffloadMode mode,
                   double ratio, Cycle epoch) {
  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = mode;
  cfg.governor.static_ratio = ratio;
  cfg.governor.epoch_cycles = epoch;
  auto wl = make_workload(name, scale);
  return Simulator(cfg).run(*wl);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "VADD";
  const std::string scale_str = argc > 2 ? argv[2] : "small";
  const ProblemScale scale = scale_str == "tiny"    ? ProblemScale::kTiny
                             : scale_str == "large" ? ProblemScale::kLarge
                                                    : ProblemScale::kSmall;
  const Cycle epoch = argc > 3 ? std::stoull(argv[3]) : 2000;

  const RunResult base = run_mode(name, scale, OffloadMode::kOff, 0.0, epoch);
  std::printf("%s baseline: %llu cycles (verified=%s)\n", name.c_str(),
              static_cast<unsigned long long>(base.sm_cycles), base.verified ? "yes" : "NO");
  std::printf("%-12s %10s %8s %9s %s\n", "config", "cycles", "speedup", "offload%", "verified");

  for (double r = 0.2; r <= 1.001; r += 0.2) {
    const RunResult res = run_mode(name, scale, OffloadMode::kStaticRatio, r, epoch);
    std::printf("static %.1f   %10llu %7.3fx %8.1f%% %s\n", r,
                static_cast<unsigned long long>(res.sm_cycles), res.speedup_vs(base),
                100.0 * res.stats.get("governor.offloads") /
                    std::max(1.0, res.stats.get("governor.decisions")),
                res.verified ? "yes" : "NO");
  }
  for (auto [mode, label] : {std::pair{OffloadMode::kDynamic, "NDP(Dyn)"},
                             std::pair{OffloadMode::kDynamicCache, "NDP(Dyn)$"}}) {
    const RunResult res = run_mode(name, scale, mode, 0.0, epoch);
    std::printf("%-11s %10llu %7.3fx %8.1f%% %s (final ratio %.2f)\n", label,
                static_cast<unsigned long long>(res.sm_cycles), res.speedup_vs(base),
                100.0 * res.stats.get("governor.offloads") /
                    std::max(1.0, res.stats.get("governor.decisions")),
                res.verified ? "yes" : "NO", res.stats.get("governor.final_ratio"));
  }
  return 0;
}
