// Custom workload walkthrough: write a kernel in the sndp assembly dialect,
// run it through the offload analyzer, inspect the generated GPU/NSU code,
// and simulate it under the partitioned-execution protocol.
//
// The kernel is a fused scale-and-accumulate: Y[i] = a * X[i] + Y[i]
// (daxpy), written with the standard launch register conventions:
//   R0 = global thread id, R1 = total threads.
#include <cstdio>

#include "sndp.h"

using namespace sndp;

namespace {

constexpr std::uint64_t kN = 64 * 1024;
constexpr double kA = 2.5;

}  // namespace

int main() {
  // --- 1. Initialize data in the functional memory. ------------------------
  GlobalMemory mem;
  MemoryAllocator alloc;
  const Addr x = alloc.alloc(kN * 8);
  const Addr y = alloc.alloc(kN * 8);
  for (std::uint64_t i = 0; i < kN; ++i) {
    mem.write_f64(x + 8 * i, 0.001 * static_cast<double>(i));
    mem.write_f64(y + 8 * i, 1.0);
  }

  // --- 2. Write the kernel in assembly. -------------------------------------
  char src[1024];
  std::snprintf(src, sizeof(src), R"(
      MOVI R16, %llu        ; &X
      MOVI R17, %llu        ; &Y
      MOVI R18, 0x4004000000000000  ; a = 2.5 (IEEE-754 bits)
      MOV  R7, R0           ; i = tid
      MOVI R6, %llu          ; N
    loop:
      IMAD R8, R7, 8, R16   ; &X[i]   (address calc -> stays on the GPU)
      IMAD R9, R7, 8, R17   ; &Y[i]
      LD   R10, [R8+0]      ; X[i]    }
      LD   R11, [R9+0]      ; Y[i]    }  the offload block
      FFMA R12, R10, R18, R11  ; a*x+y }  (a is a live-in register)
      ST   [R9+0], R12      ;         }
      IADD R7, R7, R1       ; i += nthreads
      ISETP P0, LT, R7, R6
      @P0 BRA loop
      EXIT
  )",
               static_cast<unsigned long long>(x), static_cast<unsigned long long>(y),
               static_cast<unsigned long long>(kN));
  const Program prog = assemble(src);

  // --- 3. Static analysis + code generation (paper §3). ---------------------
  const AnalysisResult analysis = analyze(prog);
  std::printf("analyzer found %zu offload block(s):\n", analysis.accepted.size());
  for (const auto& c : analysis.accepted) {
    std::printf("  %s\n", to_string(c).c_str());
  }
  const KernelImage image = generate(prog, analysis.accepted);
  std::printf("\nNSU program (what ships in the executable, Fig. 3b):\n%s\n",
              image.nsu.disassemble().c_str());

  // --- 4. Simulate baseline vs NDP. ------------------------------------------
  LaunchParams launch{256, static_cast<unsigned>(kN / 256 / 4)};

  SystemConfig cfg = SystemConfig::paper();
  cfg.governor.mode = OffloadMode::kOff;
  GlobalMemory mem_base = mem;  // copy: each run mutates memory
  const RunResult base =
      Simulator(cfg).run_image(image, launch, mem_base, "daxpy-baseline");

  cfg.governor.mode = OffloadMode::kStaticRatio;
  cfg.governor.static_ratio = 0.5;
  const RunResult ndp = Simulator(cfg).run_image(image, launch, mem, "daxpy-ndp");

  // --- 5. Verify both against the host oracle. -------------------------------
  auto verify = [&](const GlobalMemory& m) {
    for (std::uint64_t i = 0; i < kN; ++i) {
      const double expect = kA * (0.001 * static_cast<double>(i)) + 1.0;
      if (m.read_f64(y + 8 * i) != expect) return false;
    }
    return true;
  };
  std::printf("baseline: %llu cycles, verified=%s\n",
              static_cast<unsigned long long>(base.sm_cycles),
              verify(mem_base) ? "yes" : "NO");
  std::printf("NDP(0.5): %llu cycles, verified=%s (speedup %.3fx)\n",
              static_cast<unsigned long long>(ndp.sm_cycles), verify(mem) ? "yes" : "NO",
              ndp.speedup_vs(base));
  return verify(mem_base) && verify(mem) ? 0 : 1;
}
