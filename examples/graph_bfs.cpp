// Divergent-access scenario (paper §4.4): BFS-style indirect gathers.
//
// Shows the bandwidth-saving mechanism in numbers: for a divergent load the
// baseline fetches whole 128 B cache lines to the GPU, while NDP's RDF
// responses carry only the words the active threads touch and the loaded
// values return in a compact offload-ACK.
#include <cstdio>

#include "sndp.h"

using namespace sndp;

int main() {
  SystemConfig base_cfg = SystemConfig::paper();
  base_cfg.governor.mode = OffloadMode::kOff;

  SystemConfig ndp_cfg = SystemConfig::paper();
  ndp_cfg.governor.mode = OffloadMode::kStaticRatio;
  ndp_cfg.governor.static_ratio = 0.4;  // the paper's best ratio for BFS (+31%)

  auto wl_base = make_workload("BFS", ProblemScale::kSmall);
  const RunResult base = Simulator(base_cfg).run(*wl_base);
  auto wl_ndp = make_workload("BFS", ProblemScale::kSmall);
  const RunResult ndp = Simulator(ndp_cfg).run(*wl_ndp);

  std::printf("BFS gather, %s\n", wl_base->description().c_str());
  std::printf("baseline : %8llu cycles, verified=%s\n",
              static_cast<unsigned long long>(base.sm_cycles), base.verified ? "yes" : "NO");
  std::printf("NDP(0.4) : %8llu cycles, verified=%s  -> speedup %.3fx"
              " (paper: +31%% at ratio 0.4)\n",
              static_cast<unsigned long long>(ndp.sm_cycles), ndp.verified ? "yes" : "NO",
              ndp.speedup_vs(base));

  std::printf("\nwhere the bytes went (HMC->GPU direction):\n");
  std::printf("  baseline line fills : %10.0f B (whole 128 B lines, mostly wasted)\n",
              base.stats.get_or("net.bytes.MEM_RD_RESP", 0.0));
  std::printf("  NDP line fills      : %10.0f B\n",
              ndp.stats.get_or("net.bytes.MEM_RD_RESP", 0.0));
  std::printf("  NDP offload ACKs    : %10.0f B (only the touched words)\n",
              ndp.stats.get_or("net.bytes.OFLD_ACK", 0.0));
  std::printf("  RDF responses moved to the memory network: %10.0f B\n",
              ndp.stats.get_or("net.bytes.RDF_RESP", 0.0));
  std::printf("  GPU down-link total : %10.0f B -> %10.0f B\n",
              base.stats.get("net.gpu_down_bytes"), ndp.stats.get("net.gpu_down_bytes"));
  return base.verified && ndp.verified ? 0 : 1;
}
